//! The event-driven 16-processor simulator.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use imo_faults::{EccFault, EccFaults, FaultPlan, InterconnectFault, InterconnectFaults};
use imo_mem::{Cache, CacheConfig, EccEvent, Probe};
use imo_obs::{CpiCategory, CpiStack, EventKind, Recorder, ServedBy};
use imo_util::stats::{Report, Summarize};
use imo_workloads::parallel::ParallelTrace;

use crate::config::{MachineParams, Scheme};
use crate::error::{ProgressSnapshot, SimError};
use crate::protocol::{Directory, LineState};

/// Per-scheme, per-application simulation result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimResult {
    /// Application name.
    pub app: &'static str,
    /// Access-control scheme simulated.
    pub scheme: Scheme,
    /// Completion time: the cycle at which the last processor finished.
    pub total_cycles: u64,
    /// Per-processor finish times.
    pub proc_cycles: Vec<u64>,
    /// Total references simulated.
    pub ops: u64,
    /// Inline or in-handler protection lookups performed.
    pub lookups: u64,
    /// ECC faults (read-invalid) plus page-protection write traps.
    pub faults: u64,
    /// Protocol actions (protection upgrades needing the directory).
    pub actions: u64,
    /// Primary-cache misses.
    pub l1_misses: u64,
    /// Misses that also missed in the secondary cache.
    pub l2_misses: u64,
    /// Line invalidations delivered to remote caches.
    pub invalidations: u64,
    /// Directory requests re-sent after a delivery failure.
    pub retries: u64,
    /// Request timeouts suffered (a dropped message waited out its timer).
    pub timeouts: u64,
    /// NACKs received (duplicate requests rejected at the home node).
    pub nacks: u64,
    /// Protocol messages dropped by the (injected-faulty) interconnect.
    pub dropped_msgs: u64,
    /// Single-bit ECC faults corrected during line recalls.
    pub ecc_corrected: u64,
    /// Uncorrectable double-bit ECC faults during line recalls (the recalled
    /// copy was discarded and the data refetched from memory).
    pub ecc_uncorrectable: u64,
}

impl SimResult {
    /// Mean cycles per reference.
    pub fn cycles_per_op(&self) -> f64 {
        self.total_cycles as f64 / self.ops.max(1) as f64
    }
}

impl Summarize for SimResult {
    fn report(&self) -> Report {
        let mut r = Report::new();
        r.push("app", self.app)
            .push("scheme", self.scheme.name())
            .push("total_cycles", self.total_cycles)
            .push("cycles_per_op", self.cycles_per_op())
            .push("ops", self.ops)
            .push("lookups", self.lookups)
            .push("faults", self.faults)
            .push("actions", self.actions)
            .push("l1_misses", self.l1_misses)
            .push("l2_misses", self.l2_misses)
            .push("invalidations", self.invalidations)
            .push("retries", self.retries)
            .push("timeouts", self.timeouts)
            .push("nacks", self.nacks)
            .push("dropped_msgs", self.dropped_msgs)
            .push("ecc_corrected", self.ecc_corrected)
            .push("ecc_uncorrectable", self.ecc_uncorrectable);
        r
    }
}

pub(crate) struct Node {
    pub(crate) l1: Cache,
    pub(crate) l2: Cache,
    pub(crate) time: u64,
    pub(crate) cursor: usize,
}

/// The complete mutable state of an in-flight coherence run: everything the
/// event loop touches between two references. The ready queue is *not* part
/// of it — at any op boundary the queue is exactly
/// `{(time[p], p) : cursor[p] < len[p]}`, a pure function of the node
/// clocks and cursors, so [`drive`] rebuilds it on entry and the checkpoint
/// codec (`crate::snap`) never has to encode heap internals.
pub(crate) struct RunState {
    pub(crate) dir: Directory,
    pub(crate) nodes: Vec<Node>,
    pub(crate) result: SimResult,
    pub(crate) net: InterconnectFaults,
    pub(crate) ecc: EccFaults,
    pub(crate) events: u64,
    pub(crate) consecutive_failures: u32,
    pub(crate) proc_cpi: Vec<CpiStack>,
}

fn insufficient(prot: LineState, is_write: bool) -> bool {
    if is_write {
        prot != LineState::ReadWrite
    } else {
        prot == LineState::Invalid
    }
}

fn ecc_event(f: EccFault) -> EccEvent {
    match f {
        EccFault::SingleBit => EccEvent::SingleBit,
        EccFault::DoubleBit => EccEvent::DoubleBit,
    }
}

/// Simulates `trace` under `scheme` on the Table 2 machine with a perfect
/// interconnect.
///
/// Each processor walks its reference stream; the processor with the
/// smallest local clock always advances next, so protocol state transitions
/// interleave in global time order. Remote protocol work is performed by
/// user-level DMA without consuming remote processor time (§4.3.1); its
/// network latency is charged to the requester.
///
/// # Errors
///
/// Returns a [`SimError`] if the trace names more than 64 processors or the
/// run exceeds `params.limits` (with the default limits and a fault-free
/// substrate this cannot happen on a valid trace — [`simulate_baseline`]
/// packages that guarantee as an infallible call).
pub fn simulate(
    trace: &ParallelTrace,
    scheme: Scheme,
    params: &MachineParams,
) -> Result<SimResult, SimError> {
    simulate_faulty(trace, scheme, params, &FaultPlan::none())
}

/// The infallible zero-fault path: exactly [`simulate`] with the guarantee
/// made explicit. Intended for baselines, benches and examples that use
/// default limits on valid traces.
///
/// # Panics
///
/// Panics if the simulation fails anyway — i.e. the caller handed it a trace
/// with more than 64 processors or limits small enough to trip on a
/// fault-free run, both of which are caller bugs on this path.
pub fn simulate_baseline(
    trace: &ParallelTrace,
    scheme: Scheme,
    params: &MachineParams,
) -> SimResult {
    match simulate(trace, scheme, params) {
        Ok(r) => r,
        Err(e) => panic!("fault-free simulation cannot fail within default limits: {e}"),
    }
}

/// Simulates `trace` under `scheme` while injecting faults from `plan`:
/// directory requests may be dropped (timeout + NACK-style retry with capped
/// exponential backoff), duplicated (the home NACKs the extra copy) or
/// delayed, and recalled lines may suffer ECC faults (single-bit corrected,
/// double-bit discarded and refetched from memory).
///
/// The fault schedule is a pure function of `plan`'s seed, so identical
/// arguments yield identical results — including the retry counters. A plan
/// with all-zero rates is bit-identical to [`simulate`].
///
/// # Errors
///
/// * [`SimError::TooManyProcs`] — more than 64 processors in the trace.
/// * [`SimError::RetryExhausted`] — one request failed `max_retries + 1`
///   deliveries.
/// * [`SimError::Deadlock`] — the forward-progress watchdog saw too many
///   consecutive failures machine-wide.
/// * [`SimError::EventBudget`] — the protocol event budget ran out.
pub fn simulate_faulty(
    trace: &ParallelTrace,
    scheme: Scheme,
    params: &MachineParams,
    plan: &FaultPlan,
) -> Result<SimResult, SimError> {
    simulate_faulty_full(trace, scheme, params, plan).map(|(r, _)| r)
}

/// Like [`simulate_faulty`], but also returns the final [`Directory`] so
/// callers (e.g. the fault-injection test suites) can check protocol
/// invariants after the run.
///
/// # Errors
///
/// As for [`simulate_faulty`].
pub fn simulate_faulty_full(
    trace: &ParallelTrace,
    scheme: Scheme,
    params: &MachineParams,
    plan: &FaultPlan,
) -> Result<(SimResult, Directory), SimError> {
    run(trace, scheme, params, plan, None)
}

/// Like [`simulate_faulty_full`], but streams protocol events (requests,
/// drops, retries, NACKs, invalidations, ECC outcomes) into `rec`, exports
/// the run's counters and the `coh.retry_backoff` histogram into
/// `rec.metrics`, and attributes the critical-path (slowest) processor's
/// cycles into `rec.cpi` — whose total equals `SimResult::total_cycles`
/// exactly.
///
/// The recorder is strictly passive: the returned [`SimResult`] is
/// bit-identical to [`simulate_faulty_full`]'s.
///
/// # Errors
///
/// As for [`simulate_faulty`].
pub fn simulate_observed(
    trace: &ParallelTrace,
    scheme: Scheme,
    params: &MachineParams,
    plan: &FaultPlan,
    rec: &mut Recorder,
) -> Result<(SimResult, Directory), SimError> {
    run(trace, scheme, params, plan, Some(rec))
}

fn run(
    trace: &ParallelTrace,
    scheme: Scheme,
    params: &MachineParams,
    plan: &FaultPlan,
    mut obs: Option<&mut Recorder>,
) -> Result<(SimResult, Directory), SimError> {
    let mut state = init_state(trace, scheme, params, plan)?;
    let done = drive(&mut state, trace, scheme, params, &mut obs, None)?;
    debug_assert!(done, "an unbounded drive always runs the trace to completion");
    let (result, dir, proc_cpi) = finish(state);
    if let Some(rec) = obs {
        // The run's completion time is the slowest processor's clock, so its
        // stack is the one whose total equals `total_cycles`.
        if let Some(i) = result.proc_cycles.iter().position(|&t| t == result.total_cycles) {
            debug_assert_eq!(proc_cpi[i].total(), result.total_cycles);
            rec.cpi.merge(&proc_cpi[i]);
        }
        rec.metrics.set("coh.procs", trace.per_proc.len() as u64);
        rec.metrics.set("coh.total_cycles", result.total_cycles);
        rec.metrics.set("coh.ops", result.ops);
        rec.metrics.set("coh.lookups", result.lookups);
        rec.metrics.set("coh.faults", result.faults);
        rec.metrics.set("coh.actions", result.actions);
        rec.metrics.set("coh.l1_misses", result.l1_misses);
        rec.metrics.set("coh.l2_misses", result.l2_misses);
        rec.metrics.set("coh.invalidations", result.invalidations);
        rec.metrics.set("coh.retries", result.retries);
        rec.metrics.set("coh.timeouts", result.timeouts);
        rec.metrics.set("coh.nacks", result.nacks);
        rec.metrics.set("coh.dropped_msgs", result.dropped_msgs);
        rec.metrics.set("coh.ecc_corrected", result.ecc_corrected);
        rec.metrics.set("coh.ecc_uncorrectable", result.ecc_uncorrectable);
        let (seen, dropped) = (rec.total_recorded(), rec.dropped());
        rec.metrics.set("obs.events_seen", seen);
        rec.metrics.set("obs.events_dropped", dropped);
        plan.config().record_metrics(&mut rec.metrics);
    }
    Ok((result, dir))
}

/// Builds the op-0 [`RunState`] for a run of `trace` under `scheme`.
pub(crate) fn init_state(
    trace: &ParallelTrace,
    scheme: Scheme,
    params: &MachineParams,
    plan: &FaultPlan,
) -> Result<RunState, SimError> {
    let procs = trace.per_proc.len();
    if procs > 64 {
        return Err(SimError::TooManyProcs { procs });
    }
    let dir = {
        let mut p = *params;
        p.procs = procs;
        Directory::new(p)
    };
    let nodes: Vec<Node> = (0..procs)
        .map(|_| Node {
            l1: Cache::new(CacheConfig::new(params.l1_bytes, 1, params.line_bytes)),
            l2: Cache::new(CacheConfig::new(params.l2_bytes, 4, params.line_bytes)),
            time: 0,
            cursor: 0,
        })
        .collect();

    let result = SimResult {
        app: trace.name,
        scheme,
        total_cycles: 0,
        proc_cycles: vec![0; procs],
        ops: 0,
        lookups: 0,
        faults: 0,
        actions: 0,
        l1_misses: 0,
        l2_misses: 0,
        invalidations: 0,
        retries: 0,
        timeouts: 0,
        nacks: 0,
        dropped_msgs: 0,
        ecc_corrected: 0,
        ecc_uncorrectable: 0,
    };

    Ok(RunState {
        dir,
        nodes,
        result,
        // Independent per-site fault streams; all-zero rates never draw,
        // which keeps the zero-fault configuration bit-identical to the
        // baseline.
        net: plan.interconnect(),
        ecc: plan.cache_lines(),
        events: 0,
        // Machine-wide consecutive delivery failures (reset on any
        // success): the forward-progress watchdog.
        consecutive_failures: 0,
        // Per-processor CPI stacks: every cycle a processor spends is the
        // total of its per-op cost stacks, so per-category attribution
        // reconciles with `proc_cycles` exactly (and the slowest
        // processor's stack with `total_cycles`).
        proc_cpi: vec![CpiStack::default(); procs],
    })
}

/// Advances `state` until the trace completes (returns `Ok(true)`) or, when
/// `stop_at` is given, until at least `stop_at` total references have been
/// simulated (returns `Ok(false)` — paused at an op boundary, resumable by
/// calling `drive` again). `trace`, `scheme` and `params` must be the same
/// values the state was initialised with.
pub(crate) fn drive(
    state: &mut RunState,
    trace: &ParallelTrace,
    scheme: Scheme,
    params: &MachineParams,
    obs: &mut Option<&mut Recorder>,
    stop_at: Option<u64>,
) -> Result<bool, SimError> {
    let RunState { dir, nodes, result, net, ecc, events, consecutive_failures, proc_cpi } = state;
    let mut queue: BinaryHeap<Reverse<(u64, usize)>> = nodes
        .iter()
        .enumerate()
        .filter(|&(p, n)| n.cursor < trace.per_proc[p].len())
        .map(|(p, n)| Reverse((n.time, p)))
        .collect();

    let c = params.costs;
    loop {
        if let Some(stop) = stop_at {
            if result.ops >= stop && !queue.is_empty() {
                return Ok(false);
            }
        }
        let Some(Reverse((_, p))) = queue.pop() else { break };
        *events += 1;
        if *events > params.limits.event_budget {
            return Err(SimError::EventBudget { budget: params.limits.event_budget });
        }
        let op = trace.per_proc[p][nodes[p].cursor];
        nodes[p].cursor += 1;
        result.ops += 1;
        // The op's scalar cost is the stack total, so the decomposition can
        // never drift from the timing it describes.
        let mut cost = CpiStack::default();
        cost.add(CpiCategory::Base, op.think as u64);
        let t0 = nodes[p].time;
        let line = params.line_of(op.addr);
        let prot = dir.protection(p, line);

        // ---- cache probe (all schemes fetch through the caches) ----
        let l1_miss = matches!(nodes[p].l1.access(op.addr, op.is_write), Probe::Miss { .. });
        let mut served = ServedBy::L1;
        if l1_miss {
            served = ServedBy::L2;
            result.l1_misses += 1;
            cost.add(CpiCategory::L1Miss, params.l1_miss_penalty);
            if matches!(nodes[p].l2.access(op.addr, op.is_write), Probe::Miss { .. }) {
                served = ServedBy::Memory;
                result.l2_misses += 1;
                cost.add(CpiCategory::L2Miss, params.l2_miss_penalty);
            }
        }
        imo_obs::record(
            obs,
            t0,
            EventKind::CohAccess {
                proc: p as u32,
                addr: op.addr,
                line,
                store: op.is_write,
                served,
            },
        );

        if op.shared {
            let needs_action = insufficient(prot, op.is_write);
            let mut acted = false;
            match scheme {
                Scheme::RefCheck => {
                    // Inline lookup on every shared reference.
                    cost.add(CpiCategory::Handler, c.refcheck_lookup);
                    result.lookups += 1;
                    if needs_action {
                        cost.add(CpiCategory::CoherenceWait, c.state_change);
                        acted = true;
                    }
                }
                Scheme::Ecc => {
                    if !op.is_write && prot == LineState::Invalid {
                        cost.add(CpiCategory::Handler, c.ecc_read_invalid);
                        result.faults += 1;
                        acted = needs_action;
                    } else if op.is_write
                        && (prot != LineState::ReadWrite || dir.page_has_readonly(p, line))
                    {
                        // Page-grain write protection: even writes to a
                        // READWRITE block trap if the page holds READONLY
                        // data (the Blizzard-E artifact).
                        cost.add(CpiCategory::Handler, c.ecc_write_readonly_page);
                        result.faults += 1;
                        acted = needs_action;
                    }
                }
                Scheme::Informing => {
                    // Invalid blocks were evicted, so they miss; a store to
                    // a block held without write permission is a write miss.
                    let informs = l1_miss || (op.is_write && prot != LineState::ReadWrite);
                    if informs {
                        cost.add(CpiCategory::Handler, c.informing_lookup);
                        result.lookups += 1;
                        if needs_action {
                            cost.add(CpiCategory::CoherenceWait, c.state_change);
                            acted = true;
                        }
                    }
                    debug_assert!(
                        !needs_action || informs,
                        "an access needing protocol action must inform"
                    );
                }
            }
            if acted {
                // Deliver the directory request over the (possibly faulty)
                // interconnect: NACK + retry with capped exponential backoff
                // on loss, under the per-request retry cap and the
                // machine-wide forward-progress watchdog.
                let mut attempts: u32 = 0;
                imo_obs::record(
                    obs,
                    t0 + cost.total(),
                    EventKind::CohRequest { proc: p as u32, line },
                );
                loop {
                    *events += 1;
                    if *events > params.limits.event_budget {
                        return Err(SimError::EventBudget { budget: params.limits.event_budget });
                    }
                    attempts += 1;
                    match net.draw() {
                        Some(InterconnectFault::Drop) => {
                            // Lost in the network: the requester waits out
                            // its timeout, backs off, and re-sends.
                            result.dropped_msgs += 1;
                            result.timeouts += 1;
                            cost.add(CpiCategory::CoherenceWait, params.limits.request_timeout);
                            imo_obs::record(
                                obs,
                                t0 + cost.total(),
                                EventKind::CohDrop { proc: p as u32, line },
                            );
                            *consecutive_failures += 1;
                            if *consecutive_failures >= params.limits.watchdog_failures {
                                let snapshot = ProgressSnapshot {
                                    proc: p,
                                    line,
                                    attempts,
                                    pending_procs: queue.len() + 1,
                                    ownership: dir.describe(line),
                                };
                                return Err(SimError::Deadlock {
                                    cycle: nodes[p].time + cost.total(),
                                    snapshot,
                                });
                            }
                            if attempts > params.backoff.max_retries {
                                let snapshot = ProgressSnapshot {
                                    proc: p,
                                    line,
                                    attempts,
                                    pending_procs: queue.len() + 1,
                                    ownership: dir.describe(line),
                                };
                                return Err(SimError::RetryExhausted {
                                    proc: p,
                                    line,
                                    attempts,
                                    snapshot,
                                });
                            }
                            result.retries += 1;
                            let backoff = params.backoff.delay(attempts - 1);
                            cost.add(CpiCategory::CoherenceWait, backoff);
                            if let Some(rec) = obs.as_deref_mut() {
                                rec.metrics.observe("coh.retry_backoff", backoff);
                                rec.record(
                                    t0 + cost.total(),
                                    EventKind::CohRetry { proc: p as u32, line, backoff },
                                );
                            }
                        }
                        Some(InterconnectFault::Duplicate) => {
                            // Both copies arrive; the home services the first
                            // and NACKs the duplicate. No extra latency on
                            // the critical path.
                            result.nacks += 1;
                            imo_obs::record(
                                obs,
                                t0 + cost.total(),
                                EventKind::CohNack { proc: p as u32, line },
                            );
                            *consecutive_failures = 0;
                            break;
                        }
                        Some(InterconnectFault::Delay(d)) => {
                            // Late but delivered.
                            cost.add(CpiCategory::CoherenceWait, d);
                            *consecutive_failures = 0;
                            break;
                        }
                        None => {
                            *consecutive_failures = 0;
                            break;
                        }
                    }
                }

                let out = dir.act(p, line, op.is_write);
                result.actions += 1;
                cost.add(CpiCategory::CoherenceWait, out.hops * params.msg_latency);
                for q in out.invalidated.iter().collect::<Vec<_>>() {
                    *events += 1;
                    nodes[q].l1.invalidate(line);
                    // The recalled L2 copy passes through the ECC machinery:
                    // the fault plan may flip bits on it.
                    let fault = ecc.draw().map(ecc_event);
                    match nodes[q].l2.invalidate_ecc(line, fault) {
                        Ok(removed) => {
                            if fault == Some(EccEvent::SingleBit) && removed.is_some() {
                                result.ecc_corrected += 1;
                                imo_obs::record(
                                    obs,
                                    t0 + cost.total(),
                                    EventKind::EccCorrected { line },
                                );
                            }
                        }
                        Err(_lost) => {
                            // Uncorrectable: the recalled copy is useless, so
                            // the requester's fill is served from memory.
                            result.ecc_uncorrectable += 1;
                            cost.add(CpiCategory::CoherenceWait, params.l2_miss_penalty);
                            imo_obs::record(
                                obs,
                                t0 + cost.total(),
                                EventKind::EccUncorrectable { line },
                            );
                        }
                    }
                    result.invalidations += 1;
                    imo_obs::record(
                        obs,
                        t0 + cost.total(),
                        EventKind::CohInvalidate { proc: q as u32, line },
                    );
                }
            }
        }

        nodes[p].time += cost.total();
        proc_cpi[p].merge(&cost);
        result.proc_cycles[p] = nodes[p].time;
        if nodes[p].cursor < trace.per_proc[p].len() {
            queue.push(Reverse((nodes[p].time, p)));
        }
    }
    Ok(true)
}

/// Consumes a completed run state: seals `total_cycles` and hands back the
/// result, the final directory and the per-processor CPI stacks.
pub(crate) fn finish(mut state: RunState) -> (SimResult, Directory, Vec<CpiStack>) {
    state.result.total_cycles = state.result.proc_cycles.iter().copied().max().unwrap_or(0);
    (state.result, state.dir, state.proc_cpi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use imo_workloads::parallel::{all_apps, migratory, readmostly, reduction, TraceConfig};

    fn cfg() -> TraceConfig {
        // Long enough that first-touch cold misses no longer dominate.
        TraceConfig { procs: 8, ops_per_proc: 16_000, seed: 42 }
    }

    fn params() -> MachineParams {
        MachineParams::table2()
    }

    #[test]
    fn simulation_is_deterministic() {
        let t = migratory(&cfg());
        let a = simulate_baseline(&t, Scheme::Informing, &params());
        let b = simulate_baseline(&t, Scheme::Informing, &params());
        assert_eq!(a.total_cycles, b.total_cycles);
        assert_eq!(a.actions, b.actions);
    }

    #[test]
    fn all_processors_finish_all_ops() {
        let t = migratory(&cfg());
        let r = simulate_baseline(&t, Scheme::RefCheck, &params());
        assert_eq!(r.ops, 8 * 16_000);
        assert!(r.proc_cycles.iter().all(|&c| c > 0));
    }

    #[test]
    fn refcheck_pays_one_lookup_per_shared_ref() {
        let t = migratory(&cfg());
        let r = simulate_baseline(&t, Scheme::RefCheck, &params());
        assert_eq!(r.lookups, r.ops, "migratory refs are all shared");
    }

    #[test]
    fn reduction_refcheck_lookups_only_on_shared() {
        let t = reduction(&cfg());
        let r = simulate_baseline(&t, Scheme::RefCheck, &params());
        // ~25% of references are shared-classified (coefficient reads +
        // accumulator updates); the rest is private and unchecked.
        assert!(r.lookups * 3 < r.ops, "lookups {} vs ops {}", r.lookups, r.ops);
    }

    #[test]
    fn informing_lookups_bounded_by_misses_plus_write_upgrades() {
        let t = readmostly(&cfg());
        let r = simulate_baseline(&t, Scheme::Informing, &params());
        assert!(r.lookups <= r.l1_misses + r.actions);
        assert!(r.lookups < r.ops / 2, "informing must not pay per reference");
    }

    #[test]
    fn ecc_faults_only_on_bad_accesses() {
        let t = readmostly(&cfg());
        let r = simulate_baseline(&t, Scheme::Ecc, &params());
        assert!(r.faults < r.ops / 4, "read-mostly: most reads are valid");
        assert!(r.faults >= r.actions, "every action came through a fault");
    }

    #[test]
    fn protocol_actions_match_across_schemes() {
        // The protocol work is scheme-independent; only the detection cost
        // differs. (Identical traces, identical interleaving-insensitive
        // totals.)
        let t = migratory(&cfg());
        let a = simulate_baseline(&t, Scheme::RefCheck, &params());
        let b = simulate_baseline(&t, Scheme::Informing, &params());
        let c = simulate_baseline(&t, Scheme::Ecc, &params());
        // Interleavings differ slightly (costs shift timing), so allow a
        // small tolerance.
        let base = a.actions as f64;
        for r in [&b, &c] {
            let diff = (r.actions as f64 - base).abs() / base;
            assert!(diff < 0.15, "{}: {} vs {}", r.scheme.name(), r.actions, a.actions);
        }
    }

    #[test]
    fn informing_wins_on_every_app() {
        // The paper's headline: the informing-op scheme always outperforms
        // both alternatives.
        let apps = all_apps(&cfg());
        for app in &apps {
            let inf = simulate_baseline(app, Scheme::Informing, &params());
            let rc = simulate_baseline(app, Scheme::RefCheck, &params());
            let ecc = simulate_baseline(app, Scheme::Ecc, &params());
            assert!(
                inf.total_cycles <= rc.total_cycles,
                "{}: informing {} vs refcheck {}",
                app.name,
                inf.total_cycles,
                rc.total_cycles
            );
            assert!(
                inf.total_cycles <= ecc.total_cycles,
                "{}: informing {} vs ecc {}",
                app.name,
                inf.total_cycles,
                ecc.total_cycles
            );
        }
    }

    #[test]
    fn relative_order_of_losers_fluctuates() {
        // §4.3.2: "the relative performance of the reference-checking and
        // ECC-based approaches fluctuates depending on application
        // parameters". The false-sharing-heavy reduction punishes ECC's
        // fault costs; the read-mostly table punishes per-reference
        // checking.
        let ecc_loses = {
            let t = reduction(&cfg());
            simulate_baseline(&t, Scheme::Ecc, &params()).total_cycles
                > simulate_baseline(&t, Scheme::RefCheck, &params()).total_cycles
        };
        let rc_loses = {
            let t = readmostly(&cfg());
            simulate_baseline(&t, Scheme::RefCheck, &params()).total_cycles
                > simulate_baseline(&t, Scheme::Ecc, &params()).total_cycles
        };
        assert!(ecc_loses, "reduction should punish ECC fault costs");
        assert!(rc_loses, "readmostly should punish per-reference checking");
    }

    #[test]
    fn smaller_network_latency_helps_informing_relatively() {
        // §4.3.2: smaller network latencies improve the informing scheme's
        // relative performance.
        let t = migratory(&cfg());
        let mut fast = params();
        fast.msg_latency = 300;
        let ratio = |p: &MachineParams| {
            simulate_baseline(&t, Scheme::RefCheck, p).total_cycles as f64
                / simulate_baseline(&t, Scheme::Informing, p).total_cycles as f64
        };
        let slow_adv = ratio(&params());
        let fast_adv = ratio(&fast);
        assert!(
            fast_adv >= slow_adv,
            "advantage should not shrink with a faster network: {fast_adv} vs {slow_adv}"
        );
    }
}
