//! Machine and scheme parameters (Table 2 of the paper).

use imo_util::json::Json;
use imo_util::snapshot::{self, Snapshot, SnapshotError};

/// The three access-control implementations compared in Figure 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// Inline protection check on every potentially-shared reference
    /// (Blizzard-S-like).
    RefCheck,
    /// ECC-poisoning of invalid blocks; faults on bad accesses
    /// (Blizzard-E-like).
    Ecc,
    /// Protection checks in informing-memory miss handlers.
    Informing,
}

impl Scheme {
    /// All three schemes, in the paper's presentation order.
    pub fn all() -> [Scheme; 3] {
        [Scheme::RefCheck, Scheme::Ecc, Scheme::Informing]
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Scheme::RefCheck => "ref-check",
            Scheme::Ecc => "ecc",
            Scheme::Informing => "informing",
        }
    }
}

/// Per-scheme cost constants (Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchemeCosts {
    /// Reference checking: cycles per instrumented (shared) reference.
    pub refcheck_lookup: u64,
    /// Reference checking / informing: cycles to change local protection
    /// state.
    pub state_change: u64,
    /// ECC: cycles for a read to an invalid block (the fault).
    pub ecc_read_invalid: u64,
    /// ECC: cycles for a write to a block on a page with any READONLY data.
    pub ecc_write_readonly_page: u64,
    /// Informing: cycles for the in-handler lookup (6-cycle pipeline delay +
    /// 9 handler cycles to determine load vs store + table probe).
    pub informing_lookup: u64,
}

impl SchemeCosts {
    /// The Table 2 constants.
    pub fn table2() -> SchemeCosts {
        SchemeCosts {
            refcheck_lookup: 18,
            state_change: 25,
            ecc_read_invalid: 250,
            ecc_write_readonly_page: 230,
            informing_lookup: 33,
        }
    }
}

/// Budgets bounding a coherence simulation so that pathological fault
/// schedules (or model bugs) terminate with a typed error instead of hanging
/// (the coherence analogue of `imo_cpu::RunLimits`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimLimits {
    /// Maximum protocol events (references + message deliveries +
    /// invalidations) before the run fails with `SimError::EventBudget`.
    pub event_budget: u64,
    /// Cycles a requester waits for a directory reply before concluding the
    /// request was lost and retrying.
    pub request_timeout: u64,
    /// Consecutive failed deliveries (machine-wide, reset on any success)
    /// before the forward-progress watchdog declares `SimError::Deadlock`.
    pub watchdog_failures: u32,
}

impl Default for SimLimits {
    fn default() -> SimLimits {
        SimLimits {
            // ~4 G events: far above any realistic trace (the Figure 4 runs
            // are ~10^5 references each) but finite.
            event_budget: 1 << 32,
            // Four one-way message latencies: request + reply with slack.
            request_timeout: 3600,
            watchdog_failures: 64,
        }
    }
}

/// Capped exponential backoff applied between request retries.
///
/// Retry `n` (0-based) waits `min(base * multiplier^n, cap)` cycles before
/// re-sending; after `max_retries` failed attempts the request gives up with
/// `SimError::RetryExhausted`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffPolicy {
    /// Delay before the first retry (cycles).
    pub base: u64,
    /// Multiplier applied per successive retry.
    pub multiplier: u64,
    /// Upper bound on a single backoff delay (cycles).
    pub cap: u64,
    /// Failed attempts tolerated per request before giving up.
    pub max_retries: u32,
}

impl BackoffPolicy {
    /// The backoff delay before retry `attempt` (0-based), saturating at
    /// [`BackoffPolicy::cap`].
    pub fn delay(&self, attempt: u32) -> u64 {
        self.base.saturating_mul(self.multiplier.saturating_pow(attempt)).min(self.cap)
    }
}

impl Default for BackoffPolicy {
    fn default() -> BackoffPolicy {
        // Base ≈ half a message latency; cap ≈ a round trip under congestion.
        BackoffPolicy { base: 500, multiplier: 2, cap: 8000, max_retries: 16 }
    }
}

/// Machine parameters (Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MachineParams {
    /// Number of processors.
    pub procs: usize,
    /// Per-processor L1 capacity in bytes.
    pub l1_bytes: u64,
    /// Per-processor L2 capacity in bytes.
    pub l2_bytes: u64,
    /// Coherence unit / line size in bytes.
    pub line_bytes: u64,
    /// L1 miss penalty (cycles).
    pub l1_miss_penalty: u64,
    /// L2 miss penalty (cycles).
    pub l2_miss_penalty: u64,
    /// One-way network message latency (cycles).
    pub msg_latency: u64,
    /// Page size for the ECC scheme's page-grain write protection.
    pub page_bytes: u64,
    /// Scheme cost constants.
    pub costs: SchemeCosts,
    /// Termination budgets (event budget, request timeout, watchdog).
    pub limits: SimLimits,
    /// Retry backoff policy for lost directory requests.
    pub backoff: BackoffPolicy,
}

impl MachineParams {
    /// The paper's Table 2 machine: 16 processors, 16 KB L1 (10-cycle miss
    /// penalty), 128 KB L2 (25-cycle miss penalty), 32-byte coherence unit,
    /// 900-cycle one-way messages.
    pub fn table2() -> MachineParams {
        MachineParams {
            procs: 16,
            l1_bytes: 16 * 1024,
            l2_bytes: 128 * 1024,
            line_bytes: 32,
            l1_miss_penalty: 10,
            l2_miss_penalty: 25,
            msg_latency: 900,
            page_bytes: 4096,
            costs: SchemeCosts::table2(),
            limits: SimLimits::default(),
            backoff: BackoffPolicy::default(),
        }
    }

    /// Line-aligned address.
    pub fn line_of(&self, addr: u64) -> u64 {
        addr & !(self.line_bytes - 1)
    }

    /// Page-aligned address.
    pub fn page_of(&self, addr: u64) -> u64 {
        addr & !(self.page_bytes - 1)
    }

    /// The home node of a line (address-interleaved).
    pub fn home_of(&self, line: u64) -> usize {
        ((line / self.line_bytes) % self.procs as u64) as usize
    }
}

impl Default for MachineParams {
    fn default() -> MachineParams {
        MachineParams::table2()
    }
}

impl Snapshot for MachineParams {
    const KIND: &'static str = "coherence.machine_params";
    const VERSION: u32 = 1;

    /// The coherence simulator is event-driven and replays deterministically
    /// from its parameters plus a trace, so the machine checkpoint is the
    /// full parameter block (machine geometry, Table 2 scheme costs,
    /// termination budgets and retry backoff).
    fn encode(&self) -> Json {
        Json::obj([
            ("procs", snapshot::u64_json(self.procs as u64)),
            ("l1_bytes", snapshot::u64_json(self.l1_bytes)),
            ("l2_bytes", snapshot::u64_json(self.l2_bytes)),
            ("line_bytes", snapshot::u64_json(self.line_bytes)),
            ("l1_miss_penalty", snapshot::u64_json(self.l1_miss_penalty)),
            ("l2_miss_penalty", snapshot::u64_json(self.l2_miss_penalty)),
            ("msg_latency", snapshot::u64_json(self.msg_latency)),
            ("page_bytes", snapshot::u64_json(self.page_bytes)),
            (
                "costs",
                Json::obj([
                    ("refcheck_lookup", snapshot::u64_json(self.costs.refcheck_lookup)),
                    ("state_change", snapshot::u64_json(self.costs.state_change)),
                    ("ecc_read_invalid", snapshot::u64_json(self.costs.ecc_read_invalid)),
                    (
                        "ecc_write_readonly_page",
                        snapshot::u64_json(self.costs.ecc_write_readonly_page),
                    ),
                    ("informing_lookup", snapshot::u64_json(self.costs.informing_lookup)),
                ]),
            ),
            (
                "limits",
                Json::obj([
                    ("event_budget", snapshot::u64_json(self.limits.event_budget)),
                    ("request_timeout", snapshot::u64_json(self.limits.request_timeout)),
                    ("watchdog_failures", snapshot::u64_json(self.limits.watchdog_failures as u64)),
                ]),
            ),
            (
                "backoff",
                Json::obj([
                    ("base", snapshot::u64_json(self.backoff.base)),
                    ("multiplier", snapshot::u64_json(self.backoff.multiplier)),
                    ("cap", snapshot::u64_json(self.backoff.cap)),
                    ("max_retries", snapshot::u64_json(self.backoff.max_retries as u64)),
                ]),
            ),
        ])
    }

    fn decode(data: &Json) -> Result<Self, SnapshotError> {
        let costs = snapshot::field(data, "costs")?;
        let limits = snapshot::field(data, "limits")?;
        let backoff = snapshot::field(data, "backoff")?;
        let p = MachineParams {
            procs: snapshot::get_usize(data, "procs")?,
            l1_bytes: snapshot::get_u64(data, "l1_bytes")?,
            l2_bytes: snapshot::get_u64(data, "l2_bytes")?,
            line_bytes: snapshot::get_u64(data, "line_bytes")?,
            l1_miss_penalty: snapshot::get_u64(data, "l1_miss_penalty")?,
            l2_miss_penalty: snapshot::get_u64(data, "l2_miss_penalty")?,
            msg_latency: snapshot::get_u64(data, "msg_latency")?,
            page_bytes: snapshot::get_u64(data, "page_bytes")?,
            costs: SchemeCosts {
                refcheck_lookup: snapshot::get_u64(costs, "refcheck_lookup")?,
                state_change: snapshot::get_u64(costs, "state_change")?,
                ecc_read_invalid: snapshot::get_u64(costs, "ecc_read_invalid")?,
                ecc_write_readonly_page: snapshot::get_u64(costs, "ecc_write_readonly_page")?,
                informing_lookup: snapshot::get_u64(costs, "informing_lookup")?,
            },
            limits: SimLimits {
                event_budget: snapshot::get_u64(limits, "event_budget")?,
                request_timeout: snapshot::get_u64(limits, "request_timeout")?,
                watchdog_failures: snapshot::get_u32(limits, "watchdog_failures")?,
            },
            backoff: BackoffPolicy {
                base: snapshot::get_u64(backoff, "base")?,
                multiplier: snapshot::get_u64(backoff, "multiplier")?,
                cap: snapshot::get_u64(backoff, "cap")?,
                max_retries: snapshot::get_u32(backoff, "max_retries")?,
            },
        };
        // Geometry helpers assume power-of-two line/page sizes and a nonzero
        // processor count; reject wire values that would break them.
        if p.procs == 0 || !p.line_bytes.is_power_of_two() || !p.page_bytes.is_power_of_two() {
            return Err(SnapshotError::Bad("geometry"));
        }
        Ok(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_constants() {
        let p = MachineParams::table2();
        assert_eq!(p.procs, 16);
        assert_eq!(p.l1_bytes, 16 * 1024);
        assert_eq!(p.l2_bytes, 128 * 1024);
        assert_eq!(p.msg_latency, 900);
        assert_eq!(p.costs.refcheck_lookup, 18);
        assert_eq!(p.costs.ecc_read_invalid, 250);
        assert_eq!(p.costs.ecc_write_readonly_page, 230);
        assert_eq!(p.costs.informing_lookup, 33);
        assert_eq!(p.costs.state_change, 25);
    }

    #[test]
    fn geometry_helpers() {
        let p = MachineParams::table2();
        assert_eq!(p.line_of(0x1234), 0x1220);
        assert_eq!(p.page_of(0x1234), 0x1000);
        assert_eq!(p.home_of(0), 0);
        assert_eq!(p.home_of(32), 1);
        assert_eq!(p.home_of(32 * 16), 0);
    }

    #[test]
    fn backoff_is_capped_exponential() {
        let b = BackoffPolicy { base: 100, multiplier: 2, cap: 1000, max_retries: 8 };
        assert_eq!(b.delay(0), 100);
        assert_eq!(b.delay(1), 200);
        assert_eq!(b.delay(3), 800);
        assert_eq!(b.delay(4), 1000, "capped");
        assert_eq!(b.delay(63), 1000, "no overflow at large attempts");
    }

    #[test]
    fn default_limits_are_finite_and_generous() {
        let l = SimLimits::default();
        assert!(l.event_budget > 1 << 30);
        assert!(l.request_timeout >= MachineParams::table2().msg_latency * 2);
        assert!(l.watchdog_failures > BackoffPolicy::default().max_retries);
    }

    #[test]
    fn snapshot_round_trip_is_exact() {
        let mut p = MachineParams::table2();
        p.backoff.max_retries = 5;
        p.limits.event_budget = 123_456_789;
        let wire = p.to_wire().pretty();
        let back =
            MachineParams::from_wire(&imo_util::json::parse(&wire).expect("parses")).expect("ok");
        assert_eq!(back, p);
        assert_eq!(back.to_wire(), p.to_wire(), "re-encoding is byte-stable");
    }

    #[test]
    fn snapshot_rejects_zero_procs() {
        let mut p = MachineParams::table2();
        p.procs = 0;
        assert!(matches!(
            MachineParams::from_wire(&p.to_wire()),
            Err(SnapshotError::Bad("geometry"))
        ));
    }

    #[test]
    fn scheme_names() {
        assert_eq!(Scheme::all().len(), 3);
        assert_eq!(Scheme::Informing.name(), "informing");
    }
}
