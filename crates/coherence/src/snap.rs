//! Pause/resume checkpoints for the coherence simulator.
//!
//! The CPU models gained checkpointable sessions in the sweep-service work;
//! this module gives the 16-processor coherence simulator the same power, so
//! a coherence cell dispatched to an `imo-serve` worker can be preempted at
//! an op boundary, shipped over the wire, and resumed — in the same process,
//! a fresh one, or a respawned worker after a crash — with a bit-identical
//! [`SimResult`] at the end.
//!
//! A [`CohCheckpoint`] captures the full [`RunState`](crate::sim::RunState):
//! the directory and every node's protection tables, both cache arrays per
//! node, node clocks and trace cursors, the accumulated result counters and
//! CPI stacks, the event/watchdog budgets, and the *positions* of the two
//! fault streams (draws are pure functions of `(stream seed, n)`, so a
//! single counter per stream restores the exact schedule — including
//! in-flight NACK/retry pressure). The ready queue is deliberately absent:
//! at an op boundary it is a pure function of node clocks and cursors and is
//! rebuilt on resume.
//!
//! The envelope carries a `cfg_hash` binding the checkpoint to the exact
//! `(trace, scheme, params, fault plan)` it was taken under; resuming into
//! any other configuration is rejected with [`SimError::Checkpoint`] rather
//! than silently diverging.
//!
//! ## Example
//!
//! ```
//! use imo_coherence::{simulate_baseline, CohOutcome, CohSession, MachineParams, Scheme};
//! use imo_workloads::parallel::{migratory, TraceConfig};
//!
//! let trace = migratory(&TraceConfig { procs: 4, ops_per_proc: 400, seed: 1 });
//! let params = MachineParams::table2();
//! let session = CohSession::new(&trace, Scheme::Informing, params).stop_at(600);
//! let ckpt = match session.run().expect("within limits") {
//!     CohOutcome::Paused(c) => c,
//!     CohOutcome::Complete(_) => unreachable!("1600 ops total"),
//! };
//! let rest = session.stop_at(u64::MAX).resume(&ckpt).expect("within limits");
//! let full = simulate_baseline(&trace, Scheme::Informing, &params);
//! match rest {
//!     CohOutcome::Complete(r) => assert_eq!(r, full), // bit-identical
//!     CohOutcome::Paused(_) => unreachable!(),
//! }
//! ```

use imo_faults::FaultPlan;
use imo_obs::CpiCategory;
use imo_util::hash::debug_hash;
use imo_util::json::Json;
use imo_util::rng::mix64;
use imo_util::snapshot::{self, Snapshot, SnapshotError};
use imo_workloads::parallel::ParallelTrace;

use crate::config::{MachineParams, Scheme};
use crate::error::SimError;
use crate::protocol::Directory;
use crate::sim::{self, RunState, SimResult};

/// A paused coherence run, resumable via [`CohSession::resume`].
#[derive(Debug, Clone, PartialEq)]
pub struct CohCheckpoint {
    cfg_hash: u64,
    ops: u64,
    body: Json,
}

impl CohCheckpoint {
    /// Total references simulated when the run paused.
    #[must_use]
    pub fn ops(&self) -> u64 {
        self.ops
    }
}

impl Snapshot for CohCheckpoint {
    const KIND: &'static str = "coh.checkpoint";
    const VERSION: u32 = 1;

    fn encode(&self) -> Json {
        Json::obj([
            ("cfg_hash", snapshot::u64_json(self.cfg_hash)),
            ("ops", snapshot::u64_json(self.ops)),
            ("body", self.body.clone()),
        ])
    }

    fn decode(data: &Json) -> Result<Self, SnapshotError> {
        Ok(CohCheckpoint {
            cfg_hash: snapshot::get_u64(data, "cfg_hash")?,
            ops: snapshot::get_u64(data, "ops")?,
            body: snapshot::field(data, "body")?.clone(),
        })
    }
}

/// How a (possibly bounded) session run ended.
#[derive(Debug, Clone, PartialEq)]
pub enum CohOutcome {
    /// The trace ran to completion.
    Complete(SimResult),
    /// The `stop_at` bound was reached first; the checkpoint resumes it.
    Paused(CohCheckpoint),
}

/// A pausable coherence simulation: the coherence twin of the CPU models'
/// checkpoint session.
///
/// Wraps one `(trace, scheme, params, fault plan)` configuration; `run`
/// starts from op 0 and `resume` continues from a checkpoint, each driving
/// until completion or until the session's `stop_at` op bound. Sessions are
/// cheap handles — reconfigure with the builder methods freely.
///
/// The session deliberately has no recorder hook: observation attaches to
/// complete runs via [`crate::simulate_observed`]. Results are bit-identical
/// either way, so a resumed run's final [`SimResult`] matches the
/// uninterrupted one exactly.
#[derive(Debug, Clone, Copy)]
pub struct CohSession<'a> {
    trace: &'a ParallelTrace,
    scheme: Scheme,
    params: MachineParams,
    plan: FaultPlan,
    stop_at: Option<u64>,
}

impl<'a> CohSession<'a> {
    /// A session over a fault-free substrate with no op bound.
    #[must_use]
    pub fn new(trace: &'a ParallelTrace, scheme: Scheme, params: MachineParams) -> CohSession<'a> {
        CohSession { trace, scheme, params, plan: FaultPlan::none(), stop_at: None }
    }

    /// Injects faults from `plan` (the schedule is part of the checkpoint's
    /// configuration hash).
    #[must_use]
    pub fn faults(mut self, plan: FaultPlan) -> CohSession<'a> {
        self.plan = plan;
        self
    }

    /// Pauses once at least `ops` total references have been simulated
    /// (`u64::MAX` ⇒ run to completion).
    #[must_use]
    pub fn stop_at(mut self, ops: u64) -> CohSession<'a> {
        self.stop_at = if ops == u64::MAX { None } else { Some(ops) };
        self
    }

    fn cfg_hash(&self) -> u64 {
        let h = debug_hash(self.trace);
        let h = mix64(h, debug_hash(&self.scheme));
        let h = mix64(h, debug_hash(&self.params));
        mix64(h, debug_hash(self.plan.config()))
    }

    /// Runs from op 0 until completion or the `stop_at` bound.
    ///
    /// # Errors
    ///
    /// As for [`crate::simulate_faulty`].
    pub fn run(&self) -> Result<CohOutcome, SimError> {
        let state = sim::init_state(self.trace, self.scheme, &self.params, &self.plan)?;
        self.drive(state)
    }

    /// Continues from `ckpt` until completion or the `stop_at` bound.
    ///
    /// # Errors
    ///
    /// [`SimError::Checkpoint`] if the checkpoint was taken under a
    /// different configuration or fails to decode; otherwise as for
    /// [`crate::simulate_faulty`].
    pub fn resume(&self, ckpt: &CohCheckpoint) -> Result<CohOutcome, SimError> {
        if ckpt.cfg_hash != self.cfg_hash() {
            return Err(SimError::Checkpoint(SnapshotError::Bad("cfg_hash")));
        }
        let state = decode_state(self.trace, self.scheme, &self.params, &self.plan, &ckpt.body)
            .map_err(SimError::Checkpoint)?;
        self.drive(state)
    }

    fn drive(&self, mut state: RunState) -> Result<CohOutcome, SimError> {
        let mut obs = None;
        let done =
            sim::drive(&mut state, self.trace, self.scheme, &self.params, &mut obs, self.stop_at)?;
        if done {
            let (result, _, _) = sim::finish(state);
            Ok(CohOutcome::Complete(result))
        } else {
            Ok(CohOutcome::Paused(CohCheckpoint {
                cfg_hash: self.cfg_hash(),
                ops: state.result.ops,
                body: encode_state(&state),
            }))
        }
    }
}

// 13 counter fields of `SimResult` carried through a checkpoint, in wire
// order (`total_cycles` is sealed by `finish`, app/scheme by the resume
// context).
fn result_counts(r: &SimResult) -> [u64; 13] {
    [
        r.ops,
        r.lookups,
        r.faults,
        r.actions,
        r.l1_misses,
        r.l2_misses,
        r.invalidations,
        r.retries,
        r.timeouts,
        r.nacks,
        r.dropped_msgs,
        r.ecc_corrected,
        r.ecc_uncorrectable,
    ]
}

const CPI_CATS: [CpiCategory; 6] = [
    CpiCategory::Base,
    CpiCategory::IssueStall,
    CpiCategory::L1Miss,
    CpiCategory::L2Miss,
    CpiCategory::Handler,
    CpiCategory::CoherenceWait,
];

fn encode_state(s: &RunState) -> Json {
    let times: Vec<u64> = s.nodes.iter().map(|n| n.time).collect();
    let cursors: Vec<u64> = s.nodes.iter().map(|n| n.cursor as u64).collect();
    let mut cpi = Vec::with_capacity(6 * s.proc_cpi.len());
    for stack in &s.proc_cpi {
        cpi.extend_from_slice(&[
            stack.base,
            stack.issue_stall,
            stack.l1_miss,
            stack.l2_miss,
            stack.handler,
            stack.coherence_wait,
        ]);
    }
    Json::obj([
        ("dir", s.dir.snap_body()),
        ("times", snapshot::u64s_json(&times)),
        ("cursors", snapshot::u64s_json(&cursors)),
        ("l1", Json::Arr(s.nodes.iter().map(|n| n.l1.to_wire()).collect())),
        ("l2", Json::Arr(s.nodes.iter().map(|n| n.l2.to_wire()).collect())),
        ("counts", snapshot::u64s_json(&result_counts(&s.result))),
        ("proc_cycles", snapshot::u64s_json(&s.result.proc_cycles)),
        ("net_pos", snapshot::u64_json(s.net.position())),
        ("ecc_pos", snapshot::u64_json(s.ecc.position())),
        ("events", snapshot::u64_json(s.events)),
        ("consec", snapshot::u64_json(u64::from(s.consecutive_failures))),
        ("cpi", snapshot::u64s_json(&cpi)),
    ])
}

fn decode_state(
    trace: &ParallelTrace,
    scheme: Scheme,
    params: &MachineParams,
    plan: &FaultPlan,
    body: &Json,
) -> Result<RunState, SnapshotError> {
    let procs = trace.per_proc.len();
    // Fresh state gives correctly-shaped nodes/result/streams; every field
    // is then overwritten from the wire.
    let mut s =
        sim::init_state(trace, scheme, params, plan).map_err(|_| SnapshotError::Bad("trace"))?;
    let dir_params = {
        let mut p = *params;
        p.procs = procs;
        p
    };
    s.dir = Directory::snap_restore(dir_params, snapshot::field(body, "dir")?)?;
    let times = snapshot::get_u64s(body, "times")?;
    let cursors = snapshot::get_u64s(body, "cursors")?;
    let l1 = snapshot::field(body, "l1")?.as_arr().ok_or(SnapshotError::Bad("l1"))?;
    let l2 = snapshot::field(body, "l2")?.as_arr().ok_or(SnapshotError::Bad("l2"))?;
    if times.len() != procs || cursors.len() != procs || l1.len() != procs || l2.len() != procs {
        return Err(SnapshotError::Bad("times"));
    }
    for (p, node) in s.nodes.iter_mut().enumerate() {
        node.time = times[p];
        node.cursor = usize::try_from(cursors[p]).map_err(|_| SnapshotError::Bad("cursors"))?;
        if node.cursor > trace.per_proc[p].len() {
            return Err(SnapshotError::Bad("cursors"));
        }
        node.l1 = imo_mem::Cache::from_wire(&l1[p])?;
        node.l2 = imo_mem::Cache::from_wire(&l2[p])?;
    }
    let counts = snapshot::get_u64s(body, "counts")?;
    if counts.len() != 13 {
        return Err(SnapshotError::Bad("counts"));
    }
    s.result.ops = counts[0];
    s.result.lookups = counts[1];
    s.result.faults = counts[2];
    s.result.actions = counts[3];
    s.result.l1_misses = counts[4];
    s.result.l2_misses = counts[5];
    s.result.invalidations = counts[6];
    s.result.retries = counts[7];
    s.result.timeouts = counts[8];
    s.result.nacks = counts[9];
    s.result.dropped_msgs = counts[10];
    s.result.ecc_corrected = counts[11];
    s.result.ecc_uncorrectable = counts[12];
    s.result.proc_cycles = snapshot::get_u64s(body, "proc_cycles")?;
    if s.result.proc_cycles.len() != procs {
        return Err(SnapshotError::Bad("proc_cycles"));
    }
    s.net.seek(snapshot::get_u64(body, "net_pos")?);
    s.ecc.seek(snapshot::get_u64(body, "ecc_pos")?);
    s.events = snapshot::get_u64(body, "events")?;
    s.consecutive_failures = u32::try_from(snapshot::get_u64(body, "consec")?)
        .map_err(|_| SnapshotError::Bad("consec"))?;
    let cpi = snapshot::get_u64s(body, "cpi")?;
    if cpi.len() != 6 * procs {
        return Err(SnapshotError::Bad("cpi"));
    }
    for (p, stack) in s.proc_cpi.iter_mut().enumerate() {
        for (k, &cat) in CPI_CATS.iter().enumerate() {
            stack.add(cat, cpi[6 * p + k]);
        }
    }
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::simulate_faulty;
    use imo_faults::FaultConfig;
    use imo_workloads::parallel::{migratory, producer_consumer, TraceConfig};

    fn cfg() -> TraceConfig {
        TraceConfig { procs: 6, ops_per_proc: 2_000, seed: 9 }
    }

    fn stormy_plan() -> FaultPlan {
        let mut c = FaultConfig::none(3);
        c.drop_rate = 0.05;
        c.dup_rate = 0.05;
        c.delay_rate = 0.05;
        c.ecc_single_rate = 0.05;
        c.ecc_double_rate = 0.02;
        FaultPlan::new(c)
    }

    /// Round-trips a checkpoint through its printed wire text, as the serve
    /// worker protocol does.
    fn wire_trip(c: &CohCheckpoint) -> CohCheckpoint {
        let text = c.to_wire().compact();
        let parsed = imo_util::json::parse(&text).expect("wire parses");
        CohCheckpoint::from_wire(&parsed).expect("wire decodes")
    }

    #[test]
    fn pause_resume_is_bit_identical_under_faults() {
        // Pause mid-protocol with in-flight NACK/retry traffic at several
        // different boundaries; every resumed run must equal the
        // uninterrupted one bit-for-bit, including the retry counters.
        let t = producer_consumer(&cfg());
        let params = MachineParams::table2();
        let plan = stormy_plan();
        let full = simulate_faulty(&t, Scheme::Informing, &params, &plan).expect("completes");
        assert!(full.retries > 0, "plan must exercise the retry path");
        for stop in [1, 500, 6_000, 11_999] {
            let sess = CohSession::new(&t, Scheme::Informing, params).faults(plan);
            let ckpt = match sess.stop_at(stop).run().expect("runs") {
                CohOutcome::Paused(c) => wire_trip(&c),
                CohOutcome::Complete(_) => panic!("stop {stop} is before the end"),
            };
            assert!(ckpt.ops() >= stop);
            match sess.stop_at(u64::MAX).resume(&ckpt).expect("resumes") {
                CohOutcome::Complete(r) => assert_eq!(r, full, "stop {stop}"),
                CohOutcome::Paused(_) => panic!("unbounded resume must finish"),
            }
        }
    }

    #[test]
    fn chained_pauses_match_straight_run() {
        let t = migratory(&cfg());
        let params = MachineParams::table2();
        let full = simulate_faulty(&t, Scheme::Ecc, &params, &stormy_plan()).expect("completes");
        let sess = CohSession::new(&t, Scheme::Ecc, params).faults(stormy_plan());
        let mut outcome = sess.stop_at(700).run().expect("runs");
        let mut stop = 700;
        let mut pauses = 0;
        let r = loop {
            match outcome {
                CohOutcome::Complete(r) => break r,
                CohOutcome::Paused(c) => {
                    pauses += 1;
                    stop += 700;
                    outcome = sess.stop_at(stop).resume(&wire_trip(&c)).expect("resumes");
                }
            }
        };
        assert!(pauses >= 10, "12000 ops in 700-op slices: {pauses} pauses");
        assert_eq!(r, full);
    }

    #[test]
    fn checkpoint_wire_is_byte_stable() {
        let t = migratory(&cfg());
        let sess = CohSession::new(&t, Scheme::Informing, MachineParams::table2())
            .faults(stormy_plan())
            .stop_at(3_000);
        let ckpt = match sess.run().expect("runs") {
            CohOutcome::Paused(c) => c,
            CohOutcome::Complete(_) => panic!("bounded"),
        };
        let once = ckpt.to_wire().compact();
        let twice = wire_trip(&ckpt).to_wire().compact();
        assert_eq!(once, twice, "decode∘encode is the identity on wire text");
    }

    #[test]
    fn resume_rejects_mismatched_configuration() {
        let t = migratory(&cfg());
        let params = MachineParams::table2();
        let sess = CohSession::new(&t, Scheme::Informing, params).stop_at(500);
        let ckpt = match sess.run().expect("runs") {
            CohOutcome::Paused(c) => c,
            CohOutcome::Complete(_) => panic!("bounded"),
        };
        // Different scheme.
        let err = CohSession::new(&t, Scheme::Ecc, params).resume(&ckpt);
        assert!(matches!(err, Err(SimError::Checkpoint(_))), "{err:?}");
        // Different fault plan.
        let err =
            CohSession::new(&t, Scheme::Informing, params).faults(stormy_plan()).resume(&ckpt);
        assert!(matches!(err, Err(SimError::Checkpoint(_))), "{err:?}");
        // Different trace (same shape, different seed).
        let other = migratory(&TraceConfig { seed: 10, ..cfg() });
        let err = CohSession::new(&other, Scheme::Informing, params).resume(&ckpt);
        assert!(matches!(err, Err(SimError::Checkpoint(_))), "{err:?}");
    }

    #[test]
    fn unbounded_session_equals_simulate() {
        let t = migratory(&cfg());
        let params = MachineParams::table2();
        let sess = CohSession::new(&t, Scheme::RefCheck, params);
        match sess.run().expect("runs") {
            CohOutcome::Complete(r) => {
                assert_eq!(r, crate::sim::simulate_baseline(&t, Scheme::RefCheck, &params));
            }
            CohOutcome::Paused(_) => panic!("no bound set"),
        }
    }
}
