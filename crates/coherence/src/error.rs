//! Typed simulation errors (mirroring `imo_cpu::SimError`).

use std::error::Error;
use std::fmt;

/// A short snapshot of protocol state at the moment progress stopped, for
/// diagnosing deadlocks and exhausted retries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgressSnapshot {
    /// Requesting processor.
    pub proc: usize,
    /// Line the stuck request was for.
    pub line: u64,
    /// Delivery attempts made for that request.
    pub attempts: u32,
    /// Processors that still had references left to issue.
    pub pending_procs: usize,
    /// The directory's description of the line (owner, sharers, protections).
    pub ownership: String,
}

impl fmt::Display for ProgressSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "proc {} stuck on {:#x} after {} attempts ({} procs pending); {}",
            self.proc, self.line, self.attempts, self.pending_procs, self.ownership
        )
    }
}

/// Errors from the coherence simulator.
///
/// The fault-free configuration with default [`crate::SimLimits`] cannot
/// produce any of these on a valid trace; they exist so that pathological
/// fault schedules and malformed configurations terminate with a diagnosis
/// instead of hanging.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The trace names more processors than the directory's 64-bit sharer
    /// set can track.
    TooManyProcs {
        /// Processors in the offending trace.
        procs: usize,
    },
    /// The forward-progress watchdog fired: too many consecutive delivery
    /// failures machine-wide without a single success.
    Deadlock {
        /// Local cycle count of the stuck requester when progress stopped.
        cycle: u64,
        /// Protocol state at the moment the watchdog fired.
        snapshot: ProgressSnapshot,
    },
    /// The protocol event budget was exhausted before the trace completed.
    EventBudget {
        /// The budget that was exceeded.
        budget: u64,
    },
    /// A single request was retried past the backoff policy's limit.
    RetryExhausted {
        /// Requesting processor.
        proc: usize,
        /// Line the request was for.
        line: u64,
        /// Delivery attempts made (1 + retries).
        attempts: u32,
        /// Protocol state when the request gave up.
        snapshot: ProgressSnapshot,
    },
    /// A checkpoint failed to decode, or was taken from a different
    /// configuration than the one it is being resumed into.
    Checkpoint(imo_util::snapshot::SnapshotError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::TooManyProcs { procs } => {
                write!(f, "trace has {procs} processors; the directory sharer set supports 64")
            }
            SimError::Deadlock { cycle, snapshot } => {
                write!(f, "no forward progress at cycle {cycle}: {snapshot}")
            }
            SimError::EventBudget { budget } => {
                write!(f, "protocol event budget {budget} exhausted")
            }
            SimError::RetryExhausted { proc, line, attempts, snapshot } => {
                write!(
                    f,
                    "proc {proc} exhausted {attempts} delivery attempts for {line:#x}: {snapshot}"
                )
            }
            SimError::Checkpoint(e) => write!(f, "coherence checkpoint rejected: {e}"),
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap() -> ProgressSnapshot {
        ProgressSnapshot {
            proc: 3,
            line: 0x8000_0020,
            attempts: 17,
            pending_procs: 5,
            ownership: "line 0x80000020: uncached".to_string(),
        }
    }

    #[test]
    fn display_carries_diagnosis() {
        let e = SimError::Deadlock { cycle: 1234, snapshot: snap() };
        let s = e.to_string();
        assert!(s.contains("cycle 1234"));
        assert!(s.contains("proc 3"));
        assert!(s.contains("0x8000020") || s.contains("0x80000020"));
        assert!(s.contains("5 procs pending"));
    }

    #[test]
    fn retry_exhausted_names_the_line() {
        let e = SimError::RetryExhausted { proc: 1, line: 0x40, attempts: 17, snapshot: snap() };
        assert!(e.to_string().contains("0x40"));
        assert!(SimError::EventBudget { budget: 10 }.to_string().contains("10"));
        assert!(SimError::TooManyProcs { procs: 65 }.to_string().contains("65"));
    }
}
