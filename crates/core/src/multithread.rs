//! §4.1.3 — software-controlled multithreading: context-switch on a miss.
//!
//! A single miss handler parks the interrupted thread's resume address and
//! resumes the other thread, entirely under software control. Following the
//! paper's proposed optimization, the register set is **statically
//! partitioned between the threads by the compiler**, so the handler saves
//! and restores *nothing* — it is four instructions:
//!
//! ```text
//! handler:  rdmhrr  r24            ; my resume address
//!           setmhrr r26            ; return to the *other* thread instead
//!           or      r26, r24, r0   ; park my resume for the next switch
//!           jmhrr
//! ```
//!
//! While the switched-out thread's miss is serviced by the non-blocking
//! cache, the other thread executes; by the time control switches back the
//! data has usually arrived.
//!
//! Two switch policies are provided, matching the paper's discussion:
//!
//! * [`SwitchPolicy::EveryMiss`] — low-overhead traps on every primary miss
//!   (zero hit overhead, but switching on a 12-cycle secondary-cache hit
//!   costs more than it hides);
//! * [`SwitchPolicy::SecondaryMiss`] — the paper's first optimization:
//!   "invoke a thread switch only on secondary (rather than primary) cache
//!   misses", isolated here with the secondary-level outcome condition code
//!   (`bmissmem`; footnote 4 of the paper).
//!
//! The demonstration workload is the case multithreading actually targets:
//! **dependent** misses that a dynamically-scheduled processor cannot
//! overlap by itself — pointer chains whose nodes live on distinct pages.
//! With `rounds > 1` the chains are re-walked after they have become
//! resident in the secondary cache, exposing the difference between the two
//! policies.

use imo_cpu::RunResult;
use imo_cpu::SimError;
use imo_isa::{Asm, Cond, Label, Program, Reg};

use crate::machine::Machine;

/// When the switch handler is invoked.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SwitchPolicy {
    /// Switch on every primary-cache miss (informing traps; zero overhead on
    /// hits).
    #[default]
    EveryMiss,
    /// Switch only when the reference went all the way to memory, using an
    /// explicit `bmissmem` check after each chain load (one instruction of
    /// overhead per hop).
    SecondaryMiss,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ThreadMode {
    Serial,
    Switching(SwitchPolicy),
}

/// Parameters of the two-thread demonstration workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MultithreadDemo {
    /// Pointer hops each thread performs per round.
    pub iters_per_thread: u64,
    /// Bytes between consecutive chain nodes (≥ 4096 makes every first-round
    /// hop a cold miss to main memory).
    pub stride: u64,
    /// How many times each thread re-walks its chain. Rounds after the first
    /// hit in the secondary cache (as long as the chain fits), turning
    /// memory misses into 12-cycle L2 hits.
    pub rounds: u64,
    /// Extra save/restore instructions in the switch handler. Zero models
    /// the paper's fully-optimized compiler-partitioned case; larger values
    /// model handlers that must spill state ("a handful to over 100
    /// instructions", §4.1.3) — which is when switching only on secondary
    /// misses starts to pay.
    pub save_restore: u32,
}

impl Default for MultithreadDemo {
    fn default() -> MultithreadDemo {
        MultithreadDemo { iters_per_thread: 300, stride: 4096, rounds: 1, save_restore: 0 }
    }
}

/// Thread-private register windows (the compiler partitioning).
const T0_REGS: [u8; 4] = [1, 2, 3, 4]; // ptr, sum, hop counter, round counter
const T1_REGS: [u8; 4] = [8, 9, 10, 11];
const LIMIT_REG: u8 = 16; // shared read-only loop bound
const DONE_REG: u8 = 17; // completed-thread count
const TWO_REG: u8 = 18; // constant 2
const ROUNDS_REG: u8 = 19; // shared read-only round bound
const STOP_REG: u8 = 22; // set when a thread finishes: handler stops swapping
const SWAP_REG: u8 = 26; // other thread's resume address (handler-owned)

const T0_BASE: u64 = 0x100_0000;
const T1_BASE: u64 = 0x800_0000;

impl MultithreadDemo {
    fn emit_chain_data(&self, a: &mut Asm, base: u64) {
        for i in 0..self.iters_per_thread {
            a.word(base + i * self.stride, base + (i + 1) * self.stride);
        }
        // Close the cycle so multiple rounds re-walk the same nodes.
        a.word(base + self.iters_per_thread * self.stride, base);
    }

    fn emit_thread(
        &self,
        a: &mut Asm,
        regs: [u8; 4],
        base: u64,
        mode: ThreadMode,
        handler: Label,
        after: Label,
    ) {
        let [ptr, sum, ctr, rnd] = regs.map(Reg::int);
        a.li(rnd, 0);
        let round_top = a.here(&format!("round_{base:x}_{mode:?}"));
        a.li(ptr, base as i64);
        a.li(ctr, 0);
        let top = a.here(&format!("loop_{base:x}_{mode:?}"));
        match mode {
            ThreadMode::Switching(SwitchPolicy::EveryMiss) => {
                a.load_inf(ptr, ptr, 0);
            }
            ThreadMode::Switching(SwitchPolicy::SecondaryMiss) => {
                a.load(ptr, ptr, 0);
                a.branch_on_mem_miss(handler);
            }
            ThreadMode::Serial => {
                a.load(ptr, ptr, 0);
            }
        }
        a.add(sum, sum, ptr);
        a.addi(ctr, ctr, 1);
        a.branch(Cond::Lt, ctr, Reg::int(LIMIT_REG), top);
        a.addi(rnd, rnd, 1);
        a.branch(Cond::Lt, rnd, Reg::int(ROUNDS_REG), round_top);
        if let ThreadMode::Switching(policy) = mode {
            // Thread epilogue: count completion; the last thread halts, an
            // earlier finisher disables switching and resumes the other
            // thread.
            a.addi(Reg::int(DONE_REG), Reg::int(DONE_REG), 1);
            a.branch(Cond::Ge, Reg::int(DONE_REG), Reg::int(TWO_REG), after);
            match policy {
                SwitchPolicy::EveryMiss => a.clear_mhar(),
                SwitchPolicy::SecondaryMiss => a.li(Reg::int(STOP_REG), 1),
            }
            a.jr(Reg::int(SWAP_REG));
        }
        // Serial threads simply fall through to whatever follows.
    }

    /// Dependent dummy spill work standing in for register save/restore.
    fn emit_save_restore(&self, a: &mut Asm) {
        let spill = Reg::int(25);
        for _ in 0..self.save_restore {
            a.addi(spill, spill, 1);
        }
    }

    fn emit_common_prologue(&self, a: &mut Asm) {
        a.li(Reg::int(LIMIT_REG), self.iters_per_thread as i64);
        a.li(Reg::int(TWO_REG), 2);
        a.li(Reg::int(ROUNDS_REG), self.rounds.max(1) as i64);
    }

    /// The serial baseline: both chains walked back-to-back with ordinary
    /// loads (no informing machinery at all).
    pub fn serial_program(&self) -> Program {
        let mut a = Asm::new();
        let end = a.label("end");
        let dummy = a.label("unused_handler");
        self.emit_common_prologue(&mut a);
        self.emit_thread(&mut a, T0_REGS, T0_BASE, ThreadMode::Serial, dummy, end);
        self.emit_thread(&mut a, T1_REGS, T1_BASE, ThreadMode::Serial, dummy, end);
        a.bind(end).expect("label is bound exactly once");
        a.halt();
        a.bind(dummy).expect("label is bound exactly once");
        a.jump_mhrr(); // never reached
        self.emit_chain_data(&mut a, T0_BASE);
        self.emit_chain_data(&mut a, T1_BASE);
        a.assemble().expect("well-formed serial program")
    }

    /// The switching version under `policy`.
    pub fn switching_program(&self, policy: SwitchPolicy) -> Program {
        let mut a = Asm::new();
        let end = a.label("end");
        let handler = a.label("handler");
        let t1_entry = a.label("t1_entry");
        let mode = ThreadMode::Switching(policy);

        self.emit_common_prologue(&mut a);
        let t1_addr_reg = Reg::int(SWAP_REG);
        if policy == SwitchPolicy::EveryMiss {
            a.set_mhar(handler);
        }
        // Thread 1 "registers itself": jump to a stub that records thread
        // 1's body address into the swap register, then return into thread 0.
        a.jal(t1_entry); // r31 = address of thread 0's first instruction
                         // --- thread 0 body ---
        self.emit_thread(&mut a, T0_REGS, T0_BASE, mode, handler, end);
        // --- thread 1 registration stub ---
        a.bind(t1_entry).expect("label is bound exactly once");
        let here_plus = a.next_addr() + 8; // address of t1 body (after 2 instrs)
        a.li(t1_addr_reg, here_plus as i64);
        a.jr(Reg::LINK);
        debug_assert_eq!(a.next_addr(), here_plus);
        // --- thread 1 body ---
        self.emit_thread(&mut a, T1_REGS, T1_BASE, mode, handler, end);
        // --- switch handler ---
        a.bind(handler).expect("label is bound exactly once");
        let scratch = Reg::int(24);
        if policy == SwitchPolicy::SecondaryMiss {
            // A finished thread cannot be resumed: once STOP is set, return
            // straight to the interrupted thread.
            let ret = a.label("handler_ret");
            a.branch(Cond::Ne, Reg::int(STOP_REG), Reg::ZERO, ret);
            self.emit_save_restore(&mut a);
            a.read_mhrr(scratch);
            a.set_mhrr_reg(t1_addr_reg);
            a.or(t1_addr_reg, scratch, Reg::ZERO);
            a.bind(ret).expect("label is bound exactly once");
            a.jump_mhrr();
        } else {
            self.emit_save_restore(&mut a);
            a.read_mhrr(scratch);
            a.set_mhrr_reg(t1_addr_reg);
            a.or(t1_addr_reg, scratch, Reg::ZERO);
            a.jump_mhrr();
        }
        // --- end ---
        a.bind(end).expect("label is bound exactly once");
        a.halt();
        self.emit_chain_data(&mut a, T0_BASE);
        self.emit_chain_data(&mut a, T1_BASE);
        a.assemble().expect("well-formed switching program")
    }
}

/// Serial vs switch-on-miss comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultithreadComparison {
    /// The serial run.
    pub serial: RunResult,
    /// The switch-on-miss run.
    pub switching: RunResult,
}

impl MultithreadComparison {
    /// `serial cycles / switching cycles` (> 1 means switching won).
    pub fn speedup(&self) -> f64 {
        self.serial.cycles as f64 / self.switching.cycles.max(1) as f64
    }
}

/// Runs the demo workload serially and with every-miss switching.
///
/// # Errors
///
/// Propagates [`SimError`] from the simulator.
pub fn evaluate_multithreading(
    demo: &MultithreadDemo,
    machine: &Machine,
) -> Result<MultithreadComparison, SimError> {
    evaluate_multithreading_with(demo, machine, SwitchPolicy::EveryMiss)
}

/// Runs the demo workload serially and with switching under `policy`.
///
/// # Errors
///
/// Propagates [`SimError`] from the simulator.
pub fn evaluate_multithreading_with(
    demo: &MultithreadDemo,
    machine: &Machine,
    policy: SwitchPolicy,
) -> Result<MultithreadComparison, SimError> {
    let serial = machine.run(&demo.serial_program())?;
    let switching = machine.run(&demo.switching_program(policy))?;
    Ok(MultithreadComparison { serial, switching })
}

#[cfg(test)]
mod tests {
    use super::*;
    use imo_isa::exec::{Executor, NeverMiss};

    #[test]
    fn both_programs_compute_the_same_sums() {
        let demo =
            MultithreadDemo { iters_per_thread: 20, stride: 4096, rounds: 2, save_restore: 3 };
        // Functional check under a never-miss oracle (no switching at all).
        let ps = demo.serial_program();
        for policy in [SwitchPolicy::EveryMiss, SwitchPolicy::SecondaryMiss] {
            let pm = demo.switching_program(policy);
            let mut es = Executor::new(&ps);
            es.run(&mut NeverMiss, 100_000).unwrap();
            let mut em = Executor::new(&pm);
            em.run(&mut NeverMiss, 100_000).unwrap();
            for regs in [T0_REGS, T1_REGS] {
                let sum = Reg::int(regs[1]);
                assert_ne!(es.state().int(sum), 0, "chains actually walked");
                assert_eq!(es.state().int(sum), em.state().int(sum), "{policy:?}");
            }
            assert!(es.state().halted() && em.state().halted());
        }
    }

    #[test]
    fn switching_program_switches_and_completes_on_real_caches() {
        let demo =
            MultithreadDemo { iters_per_thread: 100, stride: 4096, rounds: 1, save_restore: 0 };
        let machine = Machine::default_ooo();
        let (res, state) =
            machine.run_full(&demo.switching_program(SwitchPolicy::EveryMiss)).unwrap();
        assert!(res.informing_traps > 50, "threads actually switched: {}", res.informing_traps);
        assert_eq!(state.int(Reg::int(DONE_REG)), 2, "both threads finished");
    }

    #[test]
    fn switching_sums_match_serial_under_real_caches() {
        // The architectural result must be identical regardless of how often
        // the threads interleave, for both policies.
        let demo =
            MultithreadDemo { iters_per_thread: 50, stride: 4096, rounds: 2, save_restore: 2 };
        let machine = Machine::default_in_order();
        let (_, ss) = machine.run_full(&demo.serial_program()).unwrap();
        for policy in [SwitchPolicy::EveryMiss, SwitchPolicy::SecondaryMiss] {
            let (_, sm) = machine.run_full(&demo.switching_program(policy)).unwrap();
            for regs in [T0_REGS, T1_REGS] {
                let sum = Reg::int(regs[1]);
                assert_eq!(ss.int(sum), sm.int(sum), "{policy:?}");
            }
        }
    }

    #[test]
    fn switch_on_miss_beats_serial_on_dependent_misses() {
        let demo =
            MultithreadDemo { iters_per_thread: 300, stride: 4096, rounds: 1, save_restore: 0 };
        for machine in [Machine::default_ooo(), Machine::default_in_order()] {
            let cmp = evaluate_multithreading(&demo, &machine).unwrap();
            assert!(cmp.speedup() > 1.2, "{}: speedup {}", machine.name(), cmp.speedup());
        }
    }

    #[test]
    fn switch_policy_tradeoff_depends_on_handler_weight() {
        // With the fully-optimized 4-instruction handler, switching even on
        // 12-cycle secondary-cache hits pays (switch cost < stall hidden).
        // With a heavier handler that spills state, warm-round switches
        // become a loss and the paper's switch-only-on-secondary-misses
        // policy (via the secondary condition code) wins.
        let machine = Machine::default_ooo();
        let run = |save_restore: u32, policy: SwitchPolicy| {
            let demo =
                MultithreadDemo { iters_per_thread: 200, stride: 4096, rounds: 4, save_restore };
            evaluate_multithreading_with(&demo, &machine, policy).unwrap().switching
        };

        let light_every = run(0, SwitchPolicy::EveryMiss);
        let light_secondary = run(0, SwitchPolicy::SecondaryMiss);
        assert!(
            light_every.cycles <= light_secondary.cycles,
            "cheap handler: switch on everything ({} vs {})",
            light_every.cycles,
            light_secondary.cycles
        );

        let heavy_every = run(24, SwitchPolicy::EveryMiss);
        let heavy_secondary = run(24, SwitchPolicy::SecondaryMiss);
        assert!(
            heavy_secondary.cycles < heavy_every.cycles,
            "heavy handler: only secondary misses are worth it ({} vs {})",
            heavy_secondary.cycles,
            heavy_every.cycles
        );
        assert!(
            heavy_secondary.informing_traps < heavy_every.informing_traps,
            "and it takes far fewer switches"
        );
    }
}
