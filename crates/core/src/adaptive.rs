//! §4.1.2 — adapting prefetching "on the fly" with code versioning.
//!
//! The paper's first dynamic-prefetching option: "generating multiple
//! versions of a piece of code (e.g., a loop) with different prefetching
//! strategies and using informing information to select which version to
//! run". This module builds exactly that program:
//!
//! * a one-instruction counting miss handler keeps the running miss count in
//!   a register (the informing information);
//! * the loop body exists in two versions — plain, and with an inline
//!   `pref` of the line two ahead;
//! * after every chunk of iterations, the program compares the miss-count
//!   delta against a threshold and selects the version for the next chunk.
//!
//! The demonstration workload changes phase halfway: it first streams over a
//! large region (prefetching wins), then hammers a cache-resident region
//! (prefetching is pure overhead). The adaptive program should track the
//! better static version in each phase.

use imo_cpu::{RunResult, SimError};
use imo_isa::{Asm, Cond, MemKind, Program, Reg};

use crate::machine::Machine;

/// Which loop version(s) the generated program uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VersionPolicy {
    /// Always run the plain loop.
    AlwaysPlain,
    /// Always run the prefetching loop.
    AlwaysPrefetch,
    /// Select per chunk from the miss-count delta (the paper's proposal).
    Adaptive,
}

/// Parameters of the phase-changing demonstration workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdaptiveDemo {
    /// Iterations per chunk (the adaptation granularity).
    pub chunk_iters: u64,
    /// Chunks of the streaming phase (prefetch-friendly).
    pub stream_chunks: u64,
    /// Chunks of the cache-resident phase (prefetch is overhead).
    pub hot_chunks: u64,
    /// Miss-count delta per chunk at or above which the prefetching version
    /// is selected.
    pub threshold_on: u64,
    /// Probe period mask: every `(probe_mask + 1)`-th chunk runs the plain
    /// version and the selection is updated from its miss delta. Successful
    /// prefetching suppresses the very misses that selected it, so deciding
    /// from prefetched chunks would oscillate; periodic plain probes keep an
    /// unbiased signal (the sampling idea of §4.2.2). Must be a power of two
    /// minus one.
    pub probe_mask: u64,
}

impl Default for AdaptiveDemo {
    fn default() -> AdaptiveDemo {
        AdaptiveDemo {
            chunk_iters: 64,
            stream_chunks: 48,
            hot_chunks: 48,
            threshold_on: 8,
            probe_mask: 7,
        }
    }
}

const STREAM_BASE: u64 = 0x40_0000;
const HOT_BASE: u64 = 0x100_0000;
const HOT_MASK: u64 = 0x1ff; // 512 B hot region (cold misses negligible)

impl AdaptiveDemo {
    /// Builds the program under `policy`.
    pub fn program(&self, policy: VersionPolicy) -> Program {
        let mut a = Asm::new();
        let (ptr, v, sum) = (Reg::int(1), Reg::int(2), Reg::int(3));
        let (chunk, nchunks) = (Reg::int(4), Reg::int(5));
        let (i, n) = (Reg::int(6), Reg::int(7));
        let (last, delta, thresh_on, usepref) =
            (Reg::int(8), Reg::int(9), Reg::int(10), Reg::int(11));
        let phase2_at = Reg::int(12);
        let probe = Reg::int(13); // zero on probe chunks
        let runpref = Reg::int(14);
        let misses = crate::instrument::COUNT_REG; // r27, handler-maintained

        let handler = a.label("count_handler");
        let loop_plain = a.label("loop_plain");
        let loop_pref = a.label("loop_pref");
        let chunk_done = a.label("chunk_done");
        let next_chunk = a.label("next_chunk");
        let end = a.label("end");

        a.set_mhar(handler);
        a.li(ptr, STREAM_BASE as i64);
        a.li(chunk, 0);
        a.li(nchunks, (self.stream_chunks + self.hot_chunks) as i64);
        a.li(n, self.chunk_iters as i64);
        a.li(thresh_on, self.threshold_on as i64);
        a.li(phase2_at, self.stream_chunks as i64);
        a.li(
            usepref,
            match policy {
                VersionPolicy::AlwaysPrefetch => 1,
                _ => 0,
            },
        );

        let chunk_top = a.here("chunk_top");
        // Phase switch: at chunk == chunks_per_phase, move to the hot region.
        let no_switch = a.label("no_switch");
        a.branch(Cond::Ne, chunk, phase2_at, no_switch);
        a.li(ptr, HOT_BASE as i64);
        a.bind(no_switch).expect("label is bound exactly once");

        a.li(i, 0);
        if policy == VersionPolicy::Adaptive {
            // Probe chunks run plain regardless of the current selection.
            a.andi(probe, chunk, self.probe_mask);
            a.li(runpref, 0);
            let decided = a.label(&format!("decided_{}", a.len()));
            a.branch(Cond::Eq, probe, Reg::ZERO, decided);
            a.or(runpref, usepref, Reg::ZERO);
            a.bind(decided).expect("label is bound exactly once");
            a.branch(Cond::Ne, runpref, Reg::ZERO, loop_pref);
        } else {
            a.branch(Cond::Ne, usepref, Reg::ZERO, loop_pref);
        }

        let v2 = Reg::int(15);
        // --- version A: plain (two loads per iteration: the loop keeps the
        // memory unit busy, so an extra prefetch is a real structural cost)
        a.bind(loop_plain).expect("label is bound exactly once");
        a.emit(imo_isa::Instr::Load { rd: v, base: ptr, offset: 0, kind: MemKind::Informing });
        a.emit(imo_isa::Instr::Load { rd: v2, base: ptr, offset: 8, kind: MemKind::Informing });
        a.add(sum, sum, v);
        a.add(sum, sum, v2);
        a.addi(ptr, ptr, 16);
        a.addi(i, i, 1);
        a.branch(Cond::Lt, i, n, loop_plain);
        a.jump(chunk_done);

        // --- version B: inline prefetch eight lines ahead (enough lead to
        // cover the 75-cycle memory latency at this loop's pace) ---
        a.bind(loop_pref).expect("label is bound exactly once");
        a.prefetch(ptr, 256);
        a.emit(imo_isa::Instr::Load { rd: v, base: ptr, offset: 0, kind: MemKind::Informing });
        a.emit(imo_isa::Instr::Load { rd: v2, base: ptr, offset: 8, kind: MemKind::Informing });
        a.add(sum, sum, v);
        a.add(sum, sum, v2);
        a.addi(ptr, ptr, 16);
        a.addi(i, i, 1);
        a.branch(Cond::Lt, i, n, loop_pref);

        a.bind(chunk_done).expect("label is bound exactly once");
        if policy == VersionPolicy::Adaptive {
            // delta = misses - last; last = misses. The selection is updated
            // only from probe (plain) chunks, whose miss counts are not
            // masked by the prefetching itself.
            a.sub(delta, misses, last);
            a.or(last, misses, Reg::ZERO);
            let skip_update = a.label(&format!("skip_update_{}", a.len()));
            a.branch(Cond::Ne, probe, Reg::ZERO, skip_update);
            a.slt(usepref, delta, thresh_on);
            a.li(v, 1);
            a.sub(usepref, v, usepref); // usepref = (delta >= threshold)
            a.bind(skip_update).expect("label is bound exactly once");
        }
        a.bind(next_chunk).expect("label is bound exactly once");
        // Keep the hot phase inside its small region.
        let in_stream = a.label("in_stream");
        a.branch(Cond::Lt, chunk, phase2_at, in_stream);
        a.andi(v, ptr, HOT_MASK);
        a.li(ptr, HOT_BASE as i64);
        a.add(ptr, ptr, v);
        a.bind(in_stream).expect("label is bound exactly once");
        a.addi(chunk, chunk, 1);
        a.branch(Cond::Lt, chunk, nchunks, chunk_top);
        a.jump(end);

        // --- counting miss handler (one instruction) ---
        a.bind(handler).expect("label is bound exactly once");
        a.addi(misses, misses, 1);
        a.jump_mhrr();

        a.bind(end).expect("label is bound exactly once");
        a.halt();
        a.assemble().expect("adaptive program assembles")
    }
}

/// The three-way comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveComparison {
    /// Always-plain run.
    pub plain: RunResult,
    /// Always-prefetch run.
    pub prefetch: RunResult,
    /// Adaptive run.
    pub adaptive: RunResult,
}

impl AdaptiveComparison {
    /// Cycles of the better *static* version.
    pub fn best_static(&self) -> u64 {
        self.plain.cycles.min(self.prefetch.cycles)
    }
}

/// Runs all three policies on `machine`.
///
/// # Errors
///
/// Propagates [`SimError`] from the simulator.
pub fn evaluate_adaptive(
    demo: &AdaptiveDemo,
    machine: &Machine,
) -> Result<AdaptiveComparison, SimError> {
    Ok(AdaptiveComparison {
        plain: machine.run(&demo.program(VersionPolicy::AlwaysPlain))?,
        prefetch: machine.run(&demo.program(VersionPolicy::AlwaysPrefetch))?,
        adaptive: machine.run(&demo.program(VersionPolicy::Adaptive))?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use imo_isa::exec::{Executor, NeverMiss};

    #[test]
    fn all_versions_compute_the_same_sum() {
        let demo = AdaptiveDemo {
            chunk_iters: 16,
            stream_chunks: 4,
            hot_chunks: 4,
            threshold_on: 4,
            probe_mask: 1,
        };
        let mut sums = Vec::new();
        for policy in
            [VersionPolicy::AlwaysPlain, VersionPolicy::AlwaysPrefetch, VersionPolicy::Adaptive]
        {
            let p = demo.program(policy);
            let mut e = Executor::new(&p);
            e.run(&mut NeverMiss, 1_000_000).unwrap();
            assert!(e.state().halted());
            sums.push(e.state().int(Reg::int(3)));
        }
        assert_eq!(sums[0], sums[1]);
        assert_eq!(sums[0], sums[2]);
    }

    #[test]
    fn phases_have_the_intended_miss_profiles() {
        let demo = AdaptiveDemo::default();
        let machine = Machine::default_ooo();
        let plain = machine.run(&demo.program(VersionPolicy::AlwaysPlain)).unwrap();
        // Streaming phase: one miss per line (1/4 of iterations); hot phase:
        // nearly none. So overall miss rate should be ~1/8 of references.
        let rate = plain.mem.l1d_miss_rate();
        assert!((0.05..0.25).contains(&rate), "miss rate {rate}");
    }

    #[test]
    fn prefetch_version_wins_streaming_loses_hot() {
        let machine = Machine::default_ooo();
        let stream_only =
            AdaptiveDemo { stream_chunks: 64, hot_chunks: 0, ..AdaptiveDemo::default() };
        let s = evaluate_adaptive(&stream_only, &machine).unwrap();
        assert!(
            s.prefetch.cycles < s.plain.cycles,
            "streaming: prefetch {} vs plain {}",
            s.prefetch.cycles,
            s.plain.cycles
        );
        let hot_only = AdaptiveDemo { stream_chunks: 0, hot_chunks: 64, ..AdaptiveDemo::default() };
        let h = evaluate_adaptive(&hot_only, &machine).unwrap();
        assert!(
            h.plain.cycles <= h.prefetch.cycles,
            "hot: plain {} vs prefetch {}",
            h.plain.cycles,
            h.prefetch.cycles
        );
    }

    #[test]
    fn adaptive_tracks_the_better_version() {
        let demo = AdaptiveDemo::default();
        let machine = Machine::default_ooo();
        let cmp = evaluate_adaptive(&demo, &machine).unwrap();
        // The adaptive version must beat the *worse* static version clearly
        // and come close to (or beat) the better one: it pays one chunk of
        // lag per phase change.
        let worst = cmp.plain.cycles.max(cmp.prefetch.cycles);
        assert!(cmp.adaptive.cycles < worst, "{:?}", cmp);
        assert!(
            (cmp.adaptive.cycles as f64) < cmp.best_static() as f64 * 1.10,
            "adaptive {} should be within 10% of best static {}",
            cmp.adaptive.cycles,
            cmp.best_static()
        );
    }
}
