//! # Informing memory operations as a library
//!
//! This crate packages the contribution of *Informing Memory Operations:
//! Providing Memory Performance Feedback in Modern Processors* (Horowitz,
//! Martonosi, Mowry & Smith, ISCA 1996) as a reusable library on top of the
//! `imo-isa` / `imo-mem` / `imo-cpu` substrate:
//!
//! * [`mod@instrument`] — rewrites a plain program into an *informing* one,
//!   under either of the paper's two mechanisms (§2):
//!   the **low-overhead cache-miss trap** (MHAR/MHRR) with a single shared
//!   handler (zero hit overhead) or a unique handler per static reference
//!   (one `setmhar` per reference), and the **cache-outcome condition code**
//!   (an explicit `bmiss` check after each reference). Handler bodies range
//!   from the paper's generic data-dependent chains (§4.2) to miss counting,
//!   per-reference counting, PC-hash profiling (§4.1.1) and next-line
//!   prefetching (§4.1.2).
//! * [`machine`] — a unified handle over the two processor models.
//! * [`profile`] — the §4.1.1 performance-monitoring tool: exact
//!   per-reference miss counts via informing operations.
//! * [`prefetch`] — the §4.1.2 adaptive prefetching technique: prefetches
//!   issued from the miss handler, so prefetch overhead is paid only when
//!   the program is actually missing.
//! * [`multithread`] — the §4.1.3 software-controlled multithreading
//!   technique: a miss handler that parks the interrupted thread and resumes
//!   another, with compiler-partitioned register sets.
//! * [`experiment`] — the §4.2 experiment harness behind Figures 2 and 3:
//!   N / single / unique × 1/10/100-instruction generic handlers, with
//!   graduation-slot breakdowns normalized to the uninstrumented run.
//!
//! ## Example: count misses with a one-instruction handler
//!
//! ```
//! use imo_core::instrument::{instrument, HandlerBody, HandlerKind, Scheme};
//! use imo_core::machine::Machine;
//! use imo_isa::{Asm, Reg};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A tiny kernel: walk 64 words (16 cache lines -> 16 cold misses).
//! let mut a = Asm::new();
//! let (ptr, end, v) = (Reg::int(1), Reg::int(2), Reg::int(3));
//! a.li(ptr, 0x10_0000);
//! a.li(end, 0x10_0000 + 64 * 8);
//! let top = a.here("top");
//! a.load(v, ptr, 0);
//! a.addi(ptr, ptr, 8);
//! a.branch(imo_isa::Cond::Lt, ptr, end, top);
//! a.halt();
//! let plain = a.assemble()?;
//!
//! // Rewrite it with a single trap handler that counts misses in r27.
//! let scheme = Scheme::Trap { handlers: HandlerKind::Single, body: HandlerBody::CountInRegister };
//! let inst = instrument(&plain, &scheme)?;
//!
//! let (result, state) = Machine::default_ooo().run_full(&inst.program)?;
//! assert_eq!(state.int(Reg::int(27)), 16); // 16 lines touched -> 16 misses
//! assert_eq!(result.informing_traps, 16);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod adaptive;
pub mod experiment;
pub mod instrument;
pub mod machine;
pub mod multithread;
pub mod prefetch;
pub mod profile;

pub use experiment::{ExperimentResult, NormalizedBar, Variant};
pub use instrument::{instrument, HandlerBody, HandlerKind, Instrumented, RefSite, Scheme};
pub use machine::Machine;
