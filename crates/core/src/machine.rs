//! A unified handle over the two processor models.

use imo_cpu::{inorder, ooo, InOrderConfig, OooConfig, RunLimits, RunResult, SimError};
use imo_isa::exec::ArchState;
use imo_isa::Program;
use imo_obs::{AttribConfig, Recorder};

/// One of the paper's two simulated machines, with its configuration.
///
/// # Example
///
/// ```
/// use imo_core::Machine;
/// use imo_isa::{Asm, Reg};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut a = Asm::new();
/// a.li(Reg::int(1), 1);
/// a.halt();
/// let p = a.assemble()?;
/// for m in [Machine::default_ooo(), Machine::default_in_order()] {
///     let r = m.run(&p)?;
///     assert_eq!(r.instructions, 2);
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Machine {
    /// The out-of-order MIPS-R10000-like model.
    OutOfOrder(OooConfig),
    /// The in-order Alpha-21164-like model.
    InOrder(InOrderConfig),
}

impl Machine {
    /// The paper's out-of-order configuration.
    pub fn default_ooo() -> Machine {
        Machine::OutOfOrder(OooConfig::paper())
    }

    /// The paper's in-order configuration.
    pub fn default_in_order() -> Machine {
        Machine::InOrder(InOrderConfig::paper())
    }

    /// A short display name ("ooo" / "in-order").
    pub fn name(&self) -> &'static str {
        match self {
            Machine::OutOfOrder(_) => "ooo",
            Machine::InOrder(_) => "in-order",
        }
    }

    /// The machine's core configuration for checkpoint-capable
    /// [`imo_cpu::SimSession`] runs (pause at a cycle boundary, resume —
    /// possibly in another process — to a bit-identical result).
    pub fn core_config(&self) -> imo_cpu::CoreConfig {
        match self {
            Machine::OutOfOrder(cfg) => imo_cpu::CoreConfig::Ooo(*cfg),
            Machine::InOrder(cfg) => imo_cpu::CoreConfig::InOrder(*cfg),
        }
    }

    /// The miss-attribution geometry matching this machine's L1 D-cache,
    /// ready for [`Recorder::enable_attribution`].
    pub fn attrib_config(&self) -> AttribConfig {
        let l1d = match self {
            Machine::OutOfOrder(cfg) => cfg.hier.l1d,
            Machine::InOrder(cfg) => cfg.hier.l1d,
        };
        AttribConfig::for_l1(l1d.size_bytes, u64::from(l1d.assoc), l1d.line_bytes)
    }

    /// Simulates `program` to completion with default limits.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] from the underlying model.
    pub fn run(&self, program: &Program) -> Result<RunResult, SimError> {
        self.run_limited(program, RunLimits::default())
    }

    /// Simulates `program` with explicit limits.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] from the underlying model.
    pub fn run_limited(&self, program: &Program, limits: RunLimits) -> Result<RunResult, SimError> {
        match self {
            Machine::OutOfOrder(cfg) => ooo::simulate(program, cfg, limits),
            Machine::InOrder(cfg) => inorder::simulate(program, cfg, limits),
        }
    }

    /// Simulates `program`, returning both the timing result and the final
    /// architectural state (for tools that accumulate results in memory or
    /// registers).
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] from the underlying model.
    pub fn run_full(&self, program: &Program) -> Result<(RunResult, ArchState), SimError> {
        match self {
            Machine::OutOfOrder(cfg) => ooo::simulate_full(program, cfg, RunLimits::default()),
            Machine::InOrder(cfg) => inorder::simulate_full(program, cfg, RunLimits::default()),
        }
    }

    /// Simulates `program` under the observability recorder: typed events
    /// stream into `rec` (gated by its category mask), named counters and
    /// latency histograms accumulate into `rec.metrics`, and every cycle is
    /// attributed into `rec.cpi` (whose total equals `RunResult::cycles`
    /// exactly). The recorder is strictly passive — the timing result is
    /// bit-identical to [`Machine::run`]'s.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] from the underlying model.
    pub fn run_observed(
        &self,
        program: &Program,
        rec: &mut Recorder,
    ) -> Result<(RunResult, ArchState), SimError> {
        match self {
            Machine::OutOfOrder(cfg) => {
                ooo::simulate_observed(program, cfg, RunLimits::default(), rec)
            }
            Machine::InOrder(cfg) => {
                inorder::simulate_observed(program, cfg, RunLimits::default(), rec)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imo_isa::{Asm, Reg};

    #[test]
    fn names() {
        assert_eq!(Machine::default_ooo().name(), "ooo");
        assert_eq!(Machine::default_in_order().name(), "in-order");
    }

    #[test]
    fn run_full_exposes_state() {
        let mut a = Asm::new();
        a.li(Reg::int(5), 123);
        a.halt();
        let p = a.assemble().unwrap();
        let (_, state) = Machine::default_in_order().run_full(&p).unwrap();
        assert_eq!(state.int(Reg::int(5)), 123);
    }

    #[test]
    fn both_machines_agree_functionally() {
        let mut a = Asm::new();
        let r1 = Reg::int(1);
        a.li(r1, 10);
        a.mul(r1, r1, r1);
        a.halt();
        let p = a.assemble().unwrap();
        let (_, s1) = Machine::default_ooo().run_full(&p).unwrap();
        let (_, s2) = Machine::default_in_order().run_full(&p).unwrap();
        assert_eq!(s1.int(r1), 100);
        assert_eq!(s2.int(r1), 100);
    }
}
