//! The §4.2 experiment harness behind Figures 2 and 3.
//!
//! For a given workload and machine, run the paper's five configurations —
//! no handler (N), single handler (S) and unique-per-reference handler (U)
//! with 1- and 10-instruction generic bodies — and report execution time
//! normalized to N, broken into busy / cache-stall / other-stall graduation
//! slots.

use imo_cpu::{RunLimits, RunResult, SimError};
use imo_isa::Program;

use crate::instrument::{instrument, HandlerBody, HandlerKind, InstrumentError, Scheme};
use crate::machine::Machine;

/// One experimental configuration (a bar in Figure 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Variant {
    /// Display label ("N", "1S", "1U", "10S", "10U", …).
    pub label: &'static str,
    /// The instrumentation scheme.
    pub scheme: Scheme,
}

/// The paper's Figure 2/3 variant set: N, then {single, unique} × {1, 10}.
pub fn figure2_variants() -> Vec<Variant> {
    vec![
        Variant { label: "N", scheme: Scheme::None },
        Variant {
            label: "1S",
            scheme: Scheme::Trap {
                handlers: HandlerKind::Single,
                body: HandlerBody::Generic { len: 1 },
            },
        },
        Variant {
            label: "1U",
            scheme: Scheme::Trap {
                handlers: HandlerKind::PerReference,
                body: HandlerBody::Generic { len: 1 },
            },
        },
        Variant {
            label: "10S",
            scheme: Scheme::Trap {
                handlers: HandlerKind::Single,
                body: HandlerBody::Generic { len: 10 },
            },
        },
        Variant {
            label: "10U",
            scheme: Scheme::Trap {
                handlers: HandlerKind::PerReference,
                body: HandlerBody::Generic { len: 10 },
            },
        },
    ]
}

/// Variants for the §4.2.2 100-instruction-handler experiment.
pub fn handler100_variants() -> Vec<Variant> {
    vec![
        Variant { label: "N", scheme: Scheme::None },
        Variant {
            label: "100S",
            scheme: Scheme::Trap {
                handlers: HandlerKind::Single,
                body: HandlerBody::Generic { len: 100 },
            },
        },
    ]
}

/// One bar of a normalized stacked chart: execution time relative to the N
/// run, split into the three slot categories.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NormalizedBar {
    /// Variant label.
    pub label: &'static str,
    /// Total height: `cycles / cycles(N)`.
    pub total: f64,
    /// Busy (graduating) portion of the height.
    pub busy: f64,
    /// Cache-stall portion.
    pub cache_stall: f64,
    /// Other-stall portion.
    pub other_stall: f64,
    /// Instruction-count ratio vs N (the §4.2.2 "instruction count for
    /// mdljsp2 and alvinn increases by over 30 % but execution time only 1 %"
    /// observation).
    pub instr_ratio: f64,
}

/// All variants of one workload on one machine.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentResult {
    /// Workload name.
    pub workload: String,
    /// Machine name ("ooo" / "in-order").
    pub machine: &'static str,
    /// Raw results per variant, in the order requested.
    pub raw: Vec<(&'static str, RunResult)>,
    /// Normalized stacked bars (first is N at height 1.0).
    pub bars: Vec<NormalizedBar>,
}

/// Errors from [`run_experiment`].
#[derive(Debug)]
pub enum ExperimentError {
    /// Instrumentation failed.
    Instrument(InstrumentError),
    /// Simulation failed.
    Sim(SimError),
}

impl std::fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExperimentError::Instrument(e) => write!(f, "instrumentation failed: {e}"),
            ExperimentError::Sim(e) => write!(f, "simulation failed: {e}"),
        }
    }
}

impl std::error::Error for ExperimentError {}

impl From<InstrumentError> for ExperimentError {
    fn from(e: InstrumentError) -> Self {
        ExperimentError::Instrument(e)
    }
}

impl From<SimError> for ExperimentError {
    fn from(e: SimError) -> Self {
        ExperimentError::Sim(e)
    }
}

/// Runs `variants` of `program` on `machine` and normalizes to the first
/// variant (conventionally N).
///
/// # Errors
///
/// Returns [`ExperimentError`] if instrumentation or any simulation fails.
pub fn run_experiment(
    workload: &str,
    program: &Program,
    machine: &Machine,
    variants: &[Variant],
    limits: RunLimits,
) -> Result<ExperimentResult, ExperimentError> {
    let mut raw = Vec::with_capacity(variants.len());
    for v in variants {
        let inst = instrument(program, &v.scheme)?;
        let result = machine.run_limited(&inst.program, limits)?;
        raw.push((v.label, result));
    }
    Ok(normalize_experiment(workload, machine.name(), raw))
}

/// Normalizes raw per-variant results to the first variant (conventionally N)
/// and assembles the [`ExperimentResult`].
///
/// Split out of [`run_experiment`] so callers that obtain the raw runs some
/// other way — e.g. the bench sweep's memoization layer, which may serve a
/// variant's `RunResult` from cache — produce bit-identical results.
///
/// # Panics
///
/// Panics if `raw` is empty (there is no baseline to normalize to).
#[must_use]
pub fn normalize_experiment(
    workload: &str,
    machine: &'static str,
    raw: Vec<(&'static str, RunResult)>,
) -> ExperimentResult {
    let base = &raw[0].1;
    let base_cycles = base.cycles.max(1) as f64;
    let base_instr = base.instructions.max(1) as f64;
    let bars = raw
        .iter()
        .map(|(label, r)| {
            let total = r.cycles as f64 / base_cycles;
            let (b, c, o) = r.slots.fractions();
            NormalizedBar {
                label,
                total,
                busy: b * total,
                cache_stall: c * total,
                other_stall: o * total,
                instr_ratio: r.instructions as f64 / base_instr,
            }
        })
        .collect();
    ExperimentResult { workload: workload.to_string(), machine, raw, bars }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imo_isa::{Asm, Cond, Reg};

    /// A kernel with a real miss rate: stride through 512 lines repeatedly.
    fn missy_kernel() -> Program {
        let mut a = Asm::new();
        let (i, n, base, v) = (Reg::int(1), Reg::int(2), Reg::int(3), Reg::int(4));
        a.li(i, 0);
        a.li(n, 3000);
        a.li(base, 0x10_0000);
        let top = a.here("top");
        a.load(v, base, 0);
        a.addi(base, base, 4096);
        a.andi(base, base, 0x1f_ffff);
        a.addi(i, i, 1);
        a.branch(Cond::Lt, i, n, top);
        a.halt();
        a.assemble().unwrap()
    }

    #[test]
    fn figure2_variant_set() {
        let v = figure2_variants();
        assert_eq!(v.len(), 5);
        assert_eq!(v[0].label, "N");
        assert_eq!(v[4].label, "10U");
    }

    #[test]
    fn normalization_baseline_is_one() {
        let p = missy_kernel();
        let res = run_experiment(
            "missy",
            &p,
            &Machine::default_ooo(),
            &figure2_variants(),
            RunLimits::default(),
        )
        .unwrap();
        assert_eq!(res.bars[0].label, "N");
        assert!((res.bars[0].total - 1.0).abs() < 1e-12);
        let b = res.bars[0];
        assert!((b.busy + b.cache_stall + b.other_stall - b.total).abs() < 1e-9);
    }

    #[test]
    fn handlers_increase_time_monotonically_with_length() {
        let p = missy_kernel();
        let res = run_experiment(
            "missy",
            &p,
            &Machine::default_in_order(),
            &figure2_variants(),
            RunLimits::default(),
        )
        .unwrap();
        let by_label = |l: &str| res.bars.iter().find(|b| b.label == l).unwrap().total;
        assert!(by_label("1S") >= 1.0);
        assert!(by_label("10S") > by_label("1S"), "longer handler costs more");
        assert!(by_label("10U") >= by_label("10S") * 0.9, "unique is in the same ballpark");
    }

    #[test]
    fn unique_handlers_raise_instruction_count() {
        let p = missy_kernel();
        let res = run_experiment(
            "missy",
            &p,
            &Machine::default_ooo(),
            &figure2_variants(),
            RunLimits::default(),
        )
        .unwrap();
        let u = res.bars.iter().find(|b| b.label == "1U").unwrap();
        let s = res.bars.iter().find(|b| b.label == "1S").unwrap();
        assert!(
            u.instr_ratio > s.instr_ratio,
            "per-ref setmhar adds dynamic instructions: {} vs {}",
            u.instr_ratio,
            s.instr_ratio
        );
    }
}
