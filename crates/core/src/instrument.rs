//! Binary rewriting: turn a plain program into an informing one.
//!
//! The instrumenter works on assembled [`Program`]s, the way the paper
//! envisions instrumenting executables ("programs must be compiled or
//! instrumented", §2.3): it relocates the text, converts or annotates every
//! data memory reference according to the chosen [`Scheme`], patches all
//! static control-flow targets, and appends the miss handlers. Because
//! `jal`/`jr` return addresses are produced at run time *by the rewritten
//! program*, indirect returns need no fixups.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use imo_isa::program::TEXT_BASE;
use imo_isa::reg::Reg;
use imo_isa::{Instr, MemKind, Program};

/// Registers reserved for handler code. Workload kernels must not use them
/// (the kernels in `imo-workloads` respect this convention).
pub const HANDLER_REGS: [u8; 4] = [24, 25, 26, 27];

/// The register in which [`HandlerBody::CountInRegister`] accumulates.
pub const COUNT_REG: Reg = Reg::int(27);

/// Whether one handler is shared by all references or each static reference
/// gets its own (the paper's "S" and "U" configurations).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HandlerKind {
    /// One handler for every instrumented reference. Under the trap scheme
    /// this has **zero overhead on cache hits**: the MHAR is loaded once at
    /// program entry.
    Single,
    /// A distinct handler per static reference. Under the trap scheme this
    /// costs one `setmhar` before every reference; under the condition-code
    /// scheme the per-reference `bmiss` simply names a distinct target.
    PerReference,
}

/// What the miss handler does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HandlerBody {
    /// `len` mutually-dependent single-cycle instructions — the paper's
    /// generic handler (§4.2: "we pessimistically assume that all
    /// instructions within the handlers are data-dependent on each other").
    /// Per-reference handlers draw their chain register from a rotating pool
    /// so that *different* handlers are not cross-dependent (the §4.2.2
    /// su2cor artifact where unique handlers can outrun a single one).
    Generic {
        /// Number of chained instructions (1, 10 and 100 in the paper).
        len: u32,
    },
    /// One-instruction handler incrementing [`COUNT_REG`] — the paper's
    /// "simply counting cache misses" tool.
    CountInRegister,
    /// Per-reference miss counters in memory: handler `i` increments the
    /// 64-bit word at `table_base + 8 i`. Requires
    /// [`HandlerKind::PerReference`]. This is the exact per-reference miss
    /// profile of §4.1.1 without any hashing.
    CountPerReference {
        /// Base address of the counter table (must not collide with workload
        /// data; by convention tables live at `0x7000_0000` and above).
        table_base: u64,
    },
    /// The §4.1.1 hash-table profiler: a single ~10-instruction handler that
    /// hashes the MHRR (branch-and-link return address) into a bucket and
    /// increments it — per-reference information with **no hit overhead**.
    PcHash {
        /// Base address of the bucket table.
        table_base: u64,
        /// Number of 8-byte buckets; must be a power of two.
        buckets: u64,
    },
    /// The §4.1.2 in-handler prefetcher: prefetch the next `lines` cache
    /// lines after the missing address (read from the MAR), so prefetch
    /// overhead is induced only when the program actually misses.
    NextLinePrefetch {
        /// How many subsequent 32-byte lines to prefetch.
        lines: u32,
    },
    /// A sampled generic handler (§4.2.2: for expensive handlers,
    /// "optimizations such as sampling could be used to reduce the
    /// overhead"): the `len`-instruction chain runs on every `period`-th
    /// miss; the other misses pay only a 3-instruction countdown.
    SampledGeneric {
        /// Chain length when the sample fires.
        len: u32,
        /// Sampling period (every `period`-th miss does the full work).
        period: u32,
    },
}

/// An instrumentation scheme: one of the paper's two mechanisms, or none.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheme {
    /// Leave the program untouched (the paper's "N" baseline).
    None,
    /// Low-overhead cache-miss traps (§2.2): references become informing
    /// (`ld.inf`/`st.inf`); a miss transfers control to the MHAR.
    Trap {
        /// Handler sharing.
        handlers: HandlerKind,
        /// Handler body.
        body: HandlerBody,
    },
    /// Cache-outcome condition code (§2.1): an explicit `bmiss` instruction
    /// is inserted after every reference; references stay ordinary.
    ConditionCode {
        /// Handler sharing.
        handlers: HandlerKind,
        /// Handler body.
        body: HandlerBody,
    },
}

impl Scheme {
    /// The handler body, if the scheme installs handlers.
    pub fn body(&self) -> Option<HandlerBody> {
        match *self {
            Scheme::None => None,
            Scheme::Trap { body, .. } | Scheme::ConditionCode { body, .. } => Some(body),
        }
    }

    /// The handler sharing mode, if any.
    pub fn handlers(&self) -> Option<HandlerKind> {
        match *self {
            Scheme::None => None,
            Scheme::Trap { handlers, .. } | Scheme::ConditionCode { handlers, .. } => {
                Some(handlers)
            }
        }
    }
}

/// One instrumented static memory reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefSite {
    /// Ordinal among instrumented references (program order of the text).
    pub index: usize,
    /// Address of the reference in the original program.
    pub old_pc: u64,
    /// Address of the (possibly converted) reference in the new program.
    pub new_pc: u64,
    /// The MHRR value a trap/dispatch from this reference produces.
    pub return_pc: u64,
    /// Address of this reference's handler (shared handler for
    /// [`HandlerKind::Single`]).
    pub handler_pc: u64,
    /// For counting bodies: the memory word holding this reference's count.
    pub counter_slot: Option<u64>,
}

/// The output of [`instrument`].
#[derive(Debug, Clone)]
pub struct Instrumented {
    /// The rewritten program.
    pub program: Program,
    /// Every instrumented reference, in text order.
    pub refs: Vec<RefSite>,
    /// The scheme that was applied.
    pub scheme: Scheme,
    /// Static instructions added in the main text (prologue + per-reference
    /// `setmhar`/`bmiss` instructions), excluding handler code.
    pub inline_overhead: usize,
    /// Static instructions of handler code appended.
    pub handler_instructions: usize,
}

/// Errors from [`instrument`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InstrumentError {
    /// The source already contains informing machinery (`setmhar`, `bmiss`,
    /// `jmhrr`, informing references); instrumenting twice is almost
    /// certainly a mistake.
    AlreadyInstrumented {
        /// Address of the offending instruction.
        pc: u64,
    },
    /// The program's entry point is not the start of the text segment; the
    /// rewriter needs to place the prologue at the entry.
    EntryNotAtTextBase {
        /// The actual entry address.
        entry: u64,
    },
    /// A control-flow target does not name an instruction (corrupt program).
    DanglingTarget {
        /// The unresolvable target address.
        target: u64,
    },
    /// The body/handler combination is invalid (e.g. per-reference counters
    /// with a single shared handler).
    InvalidCombination(&'static str),
}

impl fmt::Display for InstrumentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstrumentError::AlreadyInstrumented { pc } => {
                write!(f, "informing machinery already present at {pc:#x}")
            }
            InstrumentError::EntryNotAtTextBase { entry } => {
                write!(f, "entry point {entry:#x} is not the start of the text segment")
            }
            InstrumentError::DanglingTarget { target } => {
                write!(f, "control-flow target {target:#x} names no instruction")
            }
            InstrumentError::InvalidCombination(msg) => f.write_str(msg),
        }
    }
}

impl Error for InstrumentError {}

fn pool_reg(i: usize) -> Reg {
    Reg::int(HANDLER_REGS[i % HANDLER_REGS.len()])
}

/// Emits one handler body (without the trailing `jmhrr`), returning the
/// counter slot if the body counts into memory.
fn emit_body(out: &mut Vec<Instr>, body: HandlerBody, handler_index: usize) -> Option<u64> {
    match body {
        HandlerBody::Generic { len } => {
            let chain = pool_reg(handler_index);
            for _ in 0..len {
                out.push(Instr::Addi { rd: chain, rs: chain, imm: 1 });
            }
            None
        }
        HandlerBody::CountInRegister => {
            out.push(Instr::Addi { rd: COUNT_REG, rs: COUNT_REG, imm: 1 });
            None
        }
        HandlerBody::CountPerReference { table_base } => {
            let slot = table_base + 8 * handler_index as u64;
            let (a, v) = (Reg::int(24), Reg::int(25));
            out.push(Instr::Li { rd: a, imm: slot as i64 });
            out.push(Instr::Load { rd: v, base: a, offset: 0, kind: MemKind::Normal });
            out.push(Instr::Addi { rd: v, rs: v, imm: 1 });
            out.push(Instr::Store { rs: v, base: a, offset: 0, kind: MemKind::Normal });
            Some(slot)
        }
        HandlerBody::PcHash { table_base, buckets } => {
            // r24 = ((MHRR >> 2) & (buckets-1)) * 8 + table_base;
            // (*r24)++          — the paper's ~10-instruction hash handler.
            let (a, b, v) = (Reg::int(24), Reg::int(25), Reg::int(26));
            out.push(Instr::ReadMhrr { rd: a });
            out.push(Instr::Srl { rd: a, rs: a, sh: 2 });
            out.push(Instr::Andi { rd: a, rs: a, imm: buckets - 1 });
            out.push(Instr::Sll { rd: a, rs: a, sh: 3 });
            out.push(Instr::Li { rd: b, imm: table_base as i64 });
            out.push(Instr::Add { rd: a, rs: a, rt: b });
            out.push(Instr::Load { rd: v, base: a, offset: 0, kind: MemKind::Normal });
            out.push(Instr::Addi { rd: v, rs: v, imm: 1 });
            out.push(Instr::Store { rs: v, base: a, offset: 0, kind: MemKind::Normal });
            None
        }
        HandlerBody::NextLinePrefetch { lines } => {
            let a = Reg::int(24);
            out.push(Instr::ReadMar { rd: a });
            for l in 1..=lines {
                out.push(Instr::Prefetch { base: a, offset: (l as i64) * 32 });
            }
            None
        }
        HandlerBody::SampledGeneric { len, period } => {
            // r26 counts down; when it hits zero the chain runs and the
            // counter is reloaded. The `jmhrr` appended by the caller is the
            // skip target.
            let (ctr, chain) = (Reg::int(26), Reg::int(24));
            // Instruction count: 2 (countdown+test) [+ 1 reload + len chain].
            let body_start = Program::addr_of(out.len());
            let skip_target = body_start + 4 * (3 + len as u64);
            out.push(Instr::Addi { rd: ctr, rs: ctr, imm: -1 });
            out.push(Instr::Branch {
                cond: crate::instrument::branch_gt(),
                rs: ctr,
                rt: Reg::ZERO,
                target: skip_target,
            });
            out.push(Instr::Li { rd: ctr, imm: period as i64 });
            for _ in 0..len {
                out.push(Instr::Addi { rd: chain, rs: chain, imm: 1 });
            }
            debug_assert_eq!(Program::addr_of(out.len()), skip_target);
            None
        }
    }
}

/// `Cond::Gt` spelled as a function to keep the emission table tidy.
fn branch_gt() -> imo_isa::Cond {
    imo_isa::Cond::Gt
}

/// Rewrites `src` under `scheme`.
///
/// Every load and store in `src` is instrumented. The rewritten program has
/// handlers appended after the original text and all static branch/jump
/// targets relocated.
///
/// # Errors
///
/// See [`InstrumentError`]. In particular the source program must be "plain":
/// no informing machinery, entry at the start of the text segment.
pub fn instrument(src: &Program, scheme: &Scheme) -> Result<Instrumented, InstrumentError> {
    // Validate.
    if src.entry() != TEXT_BASE {
        return Err(InstrumentError::EntryNotAtTextBase { entry: src.entry() });
    }
    for (pc, ins) in src.iter() {
        let informing_machinery = matches!(
            ins,
            Instr::SetMhar { .. }
                | Instr::SetMharReg { .. }
                | Instr::SetMhrrReg { .. }
                | Instr::BranchOnMiss { .. }
                | Instr::BranchOnMemMiss { .. }
                | Instr::JumpMhrr
                | Instr::ReadMhrr { .. }
                | Instr::ReadMar { .. }
        ) || ins.is_informing();
        if informing_machinery {
            return Err(InstrumentError::AlreadyInstrumented { pc });
        }
    }
    if let (Some(HandlerBody::CountPerReference { .. }), Some(HandlerKind::Single)) =
        (scheme.body(), scheme.handlers())
    {
        return Err(InstrumentError::InvalidCombination(
            "per-reference counters require per-reference handlers",
        ));
    }
    if let Some(HandlerBody::PcHash { buckets, .. }) = scheme.body() {
        if !buckets.is_power_of_two() {
            return Err(InstrumentError::InvalidCombination(
                "hash bucket count must be a power of two",
            ));
        }
    }

    if matches!(scheme, Scheme::None) {
        return Ok(Instrumented {
            program: src.clone(),
            refs: Vec::new(),
            scheme: *scheme,
            inline_overhead: 0,
            handler_instructions: 0,
        });
    }

    let n_refs = src.instrs().iter().filter(|i| i.is_data_ref()).count();
    let kind = scheme.handlers().expect("non-None scheme has handlers");
    let body = scheme.body().expect("non-None scheme has a body");
    let n_handlers = match kind {
        HandlerKind::Single => 1,
        HandlerKind::PerReference => n_refs.max(1),
    };

    // ---- Pass 1: lay out the new text, recording old->new address map ----
    let is_trap = matches!(scheme, Scheme::Trap { .. });
    let prologue = if is_trap && kind == HandlerKind::Single { 1 } else { 0 };

    let mut new_instrs: Vec<Instr> = Vec::with_capacity(src.len() + 2 * n_refs + prologue);
    let mut map: HashMap<u64, u64> = HashMap::with_capacity(src.len());
    // Placeholder prologue (patched once handler addresses are known).
    for _ in 0..prologue {
        new_instrs.push(Instr::Nop);
    }

    // Per-instruction rewrite. Handler targets are not yet known, so we
    // record patch points.
    struct RefPatch {
        ref_index: usize,
        /// Index in `new_instrs` of the setmhar/bmiss needing a handler addr.
        patch_at: Option<usize>,
        old_pc: u64,
        new_ref_index_in_text: usize,
    }
    let mut patches: Vec<RefPatch> = Vec::new();
    let mut ref_index = 0usize;

    for (old_pc, ins) in src.iter() {
        let group_start = Program::addr_of(new_instrs.len());
        map.insert(old_pc, group_start);
        if ins.is_data_ref() {
            match scheme {
                Scheme::Trap { .. } => {
                    let patch_at = if kind == HandlerKind::PerReference {
                        new_instrs.push(Instr::SetMhar { target: 0 });
                        Some(new_instrs.len() - 1)
                    } else {
                        None
                    };
                    let new_ref_at = new_instrs.len();
                    new_instrs.push(to_informing(ins));
                    patches.push(RefPatch {
                        ref_index,
                        patch_at,
                        old_pc,
                        new_ref_index_in_text: new_ref_at,
                    });
                }
                Scheme::ConditionCode { .. } => {
                    let new_ref_at = new_instrs.len();
                    new_instrs.push(ins);
                    new_instrs.push(Instr::BranchOnMiss { target: 0 });
                    patches.push(RefPatch {
                        ref_index,
                        patch_at: Some(new_instrs.len() - 1),
                        old_pc,
                        new_ref_index_in_text: new_ref_at,
                    });
                }
                Scheme::None => unreachable!(),
            }
            ref_index += 1;
        } else {
            new_instrs.push(ins);
        }
    }
    let inline_overhead = new_instrs.len() - src.len();

    // ---- Pass 2: append handlers ----
    let mut handler_addrs: Vec<u64> = Vec::with_capacity(n_handlers);
    let mut counter_slots: Vec<Option<u64>> = Vec::with_capacity(n_handlers);
    let handlers_start = new_instrs.len();
    for h in 0..n_handlers {
        handler_addrs.push(Program::addr_of(new_instrs.len()));
        counter_slots.push(emit_body(&mut new_instrs, body, h));
        new_instrs.push(Instr::JumpMhrr);
    }
    let handler_instructions = new_instrs.len() - handlers_start;

    // ---- Pass 3: patch targets ----
    // Prologue: load the shared handler's address into the MHAR.
    if prologue == 1 {
        new_instrs[0] = Instr::SetMhar { target: handler_addrs[0] };
    }
    // Original control flow: relocate through the map. Handler code and the
    // inserted instructions are patched separately below, so only rewrite
    // instructions that came from the source (identified by their target
    // being an old-text address... all source targets are, by construction).
    let handler_region = Program::addr_of(handlers_start);
    for (i, ins) in new_instrs.iter_mut().enumerate() {
        let addr = Program::addr_of(i);
        if addr >= handler_region {
            break;
        }
        match ins {
            Instr::Branch { target, .. } | Instr::Jump { target } | Instr::Jal { target } => {
                let t = *target;
                *target = *map.get(&t).ok_or(InstrumentError::DanglingTarget { target: t })?;
            }
            _ => {}
        }
    }
    // Inserted setmhar/bmiss instructions get their handler addresses.
    let mut refs = Vec::with_capacity(patches.len());
    for p in &patches {
        let h = match kind {
            HandlerKind::Single => 0,
            HandlerKind::PerReference => p.ref_index,
        };
        if let Some(at) = p.patch_at {
            match &mut new_instrs[at] {
                Instr::SetMhar { target } | Instr::BranchOnMiss { target } => {
                    *target = handler_addrs[h];
                }
                other => unreachable!("patch point holds {other:?}"),
            }
        }
        let new_pc = Program::addr_of(p.new_ref_index_in_text);
        let return_pc = match scheme {
            // Trap: MHRR = address after the memory op.
            Scheme::Trap { .. } => new_pc + 4,
            // Condition code: MHRR = address after the bmiss.
            Scheme::ConditionCode { .. } => new_pc + 8,
            Scheme::None => unreachable!(),
        };
        refs.push(RefSite {
            index: p.ref_index,
            old_pc: p.old_pc,
            new_pc,
            return_pc,
            handler_pc: handler_addrs[h],
            counter_slot: counter_slots[h],
        });
    }

    // ---- Assemble the result through the public builder ----
    let mut asm = imo_isa::Asm::new();
    for ins in &new_instrs {
        asm.emit(*ins);
    }
    for &(addr, value) in src.data() {
        asm.word(addr, value);
    }
    let program = asm.assemble().expect("non-empty rewritten text");

    Ok(Instrumented { program, refs, scheme: *scheme, inline_overhead, handler_instructions })
}

fn to_informing(ins: Instr) -> Instr {
    match ins {
        Instr::Load { rd, base, offset, .. } => {
            Instr::Load { rd, base, offset, kind: MemKind::Informing }
        }
        Instr::Store { rs, base, offset, .. } => {
            Instr::Store { rs, base, offset, kind: MemKind::Informing }
        }
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imo_isa::exec::{AlwaysMiss, Executor, NeverMiss};
    use imo_isa::{Asm, Cond};

    fn r(i: u8) -> Reg {
        Reg::int(i)
    }

    /// A loop with a forward and a backward branch spanning two loads.
    fn looped_kernel() -> Program {
        let mut a = Asm::new();
        let (i, n, base, v) = (r(1), r(2), r(3), r(4));
        a.li(i, 0);
        a.li(n, 16);
        a.li(base, 0x10_0000);
        let top = a.here("top");
        let skip = a.label("skip");
        a.load(v, base, 0);
        a.branch(Cond::Eq, v, Reg::ZERO, skip);
        a.store(v, base, 8);
        a.bind(skip).unwrap();
        a.addi(base, base, 64);
        a.addi(i, i, 1);
        a.branch(Cond::Lt, i, n, top);
        a.halt();
        a.assemble().unwrap()
    }

    #[test]
    fn none_scheme_is_identity() {
        let p = looped_kernel();
        let inst = instrument(&p, &Scheme::None).unwrap();
        assert_eq!(inst.program.instrs(), p.instrs());
        assert_eq!(inst.inline_overhead, 0);
        assert!(inst.refs.is_empty());
    }

    #[test]
    fn trap_single_adds_only_prologue_inline() {
        let p = looped_kernel();
        let scheme =
            Scheme::Trap { handlers: HandlerKind::Single, body: HandlerBody::Generic { len: 10 } };
        let inst = instrument(&p, &scheme).unwrap();
        assert_eq!(inst.inline_overhead, 1, "one setmhar prologue; hits cost nothing");
        assert_eq!(inst.handler_instructions, 11, "10 chained + jmhrr");
        assert_eq!(inst.refs.len(), 2);
        // All refs share the single handler.
        assert_eq!(inst.refs[0].handler_pc, inst.refs[1].handler_pc);
        // The converted refs are informing.
        for site in &inst.refs {
            let ins = inst.program.fetch(site.new_pc).unwrap();
            assert!(ins.is_informing(), "{ins}");
        }
    }

    #[test]
    fn trap_unique_adds_one_setmhar_per_ref() {
        let p = looped_kernel();
        let scheme = Scheme::Trap {
            handlers: HandlerKind::PerReference,
            body: HandlerBody::Generic { len: 1 },
        };
        let inst = instrument(&p, &scheme).unwrap();
        assert_eq!(inst.inline_overhead, 2, "one setmhar per static reference");
        assert_eq!(inst.handler_instructions, 2 * 2, "per-ref handlers: 1 + jmhrr each");
        assert_ne!(inst.refs[0].handler_pc, inst.refs[1].handler_pc);
        // Each ref is preceded by its setmhar.
        for site in &inst.refs {
            let prev = inst.program.fetch(site.new_pc - 4).unwrap();
            assert_eq!(prev, Instr::SetMhar { target: site.handler_pc });
        }
    }

    #[test]
    fn condition_code_adds_bmiss_after_each_ref() {
        let p = looped_kernel();
        let scheme = Scheme::ConditionCode {
            handlers: HandlerKind::Single,
            body: HandlerBody::Generic { len: 1 },
        };
        let inst = instrument(&p, &scheme).unwrap();
        assert_eq!(inst.inline_overhead, 2);
        for site in &inst.refs {
            let ins = inst.program.fetch(site.new_pc).unwrap();
            assert!(!ins.is_informing(), "cc scheme keeps refs ordinary");
            let next = inst.program.fetch(site.new_pc + 4).unwrap();
            assert_eq!(next, Instr::BranchOnMiss { target: site.handler_pc });
        }
    }

    #[test]
    fn rewritten_program_computes_the_same_result() {
        // Functional equivalence: the instrumented program, on a never-miss
        // oracle, produces exactly the plain program's architectural effects.
        let p = looped_kernel();
        let mut plain = Executor::new(&p);
        plain.run(&mut NeverMiss, 100_000).unwrap();

        for scheme in [
            Scheme::Trap { handlers: HandlerKind::Single, body: HandlerBody::Generic { len: 10 } },
            Scheme::Trap {
                handlers: HandlerKind::PerReference,
                body: HandlerBody::Generic { len: 1 },
            },
            Scheme::ConditionCode {
                handlers: HandlerKind::Single,
                body: HandlerBody::Generic { len: 10 },
            },
        ] {
            let inst = instrument(&p, &scheme).unwrap();
            let mut e = Executor::new(&inst.program);
            e.run(&mut NeverMiss, 100_000).unwrap();
            for reg in 1..8 {
                assert_eq!(
                    e.state().int(r(reg)),
                    plain.state().int(r(reg)),
                    "r{reg} differs under {scheme:?}"
                );
            }
        }
    }

    #[test]
    fn handlers_run_on_every_miss_under_always_miss() {
        let p = looped_kernel();
        let scheme =
            Scheme::Trap { handlers: HandlerKind::Single, body: HandlerBody::CountInRegister };
        let inst = instrument(&p, &scheme).unwrap();
        let mut e = Executor::new(&inst.program);
        e.run(&mut AlwaysMiss, 100_000).unwrap();
        // 16 iterations x (1 load + 1 store when v != 0). Loads read zeroed
        // memory -> v == 0 -> stores skipped: 16 misses.
        assert_eq!(e.state().int(COUNT_REG), 16);
    }

    #[test]
    fn per_reference_counters_distinguish_refs() {
        let p = looped_kernel();
        let table = 0x7000_0000;
        let scheme = Scheme::Trap {
            handlers: HandlerKind::PerReference,
            body: HandlerBody::CountPerReference { table_base: table },
        };
        let inst = instrument(&p, &scheme).unwrap();
        assert_eq!(inst.refs[0].counter_slot, Some(table));
        assert_eq!(inst.refs[1].counter_slot, Some(table + 8));
        let mut e = Executor::new(&inst.program);
        e.run(&mut AlwaysMiss, 100_000).unwrap();
        assert_eq!(e.state().memory().read(table), 16, "load site missed 16x");
        assert_eq!(e.state().memory().read(table + 8), 0, "store site never ran");
    }

    #[test]
    fn pc_hash_profiler_counts_by_return_address() {
        let p = looped_kernel();
        let table = 0x7000_0000;
        let scheme = Scheme::Trap {
            handlers: HandlerKind::Single,
            body: HandlerBody::PcHash { table_base: table, buckets: 1024 },
        };
        let inst = instrument(&p, &scheme).unwrap();
        let mut e = Executor::new(&inst.program);
        e.run(&mut AlwaysMiss, 100_000).unwrap();
        let site = &inst.refs[0];
        let bucket = ((site.return_pc >> 2) & 1023) * 8 + table;
        assert_eq!(e.state().memory().read(bucket), 16);
    }

    #[test]
    fn rejects_double_instrumentation() {
        let p = looped_kernel();
        let scheme =
            Scheme::Trap { handlers: HandlerKind::Single, body: HandlerBody::Generic { len: 1 } };
        let once = instrument(&p, &scheme).unwrap();
        let again = instrument(&once.program, &scheme);
        assert!(matches!(again, Err(InstrumentError::AlreadyInstrumented { .. })));
    }

    #[test]
    fn rejects_invalid_combination() {
        let p = looped_kernel();
        let scheme = Scheme::Trap {
            handlers: HandlerKind::Single,
            body: HandlerBody::CountPerReference { table_base: 0x7000_0000 },
        };
        assert!(matches!(instrument(&p, &scheme), Err(InstrumentError::InvalidCombination(_))));
    }

    #[test]
    fn rejects_non_power_of_two_buckets() {
        let p = looped_kernel();
        let scheme = Scheme::Trap {
            handlers: HandlerKind::Single,
            body: HandlerBody::PcHash { table_base: 0x7000_0000, buckets: 1000 },
        };
        assert!(matches!(instrument(&p, &scheme), Err(InstrumentError::InvalidCombination(_))));
    }

    #[test]
    fn call_return_survives_relocation() {
        // jal/jr return addresses are produced at run time, so relocation
        // must not break them even though every address moved.
        let mut a = Asm::new();
        let f = a.label("f");
        a.li(r(1), 0x10_0000);
        a.load(r(2), r(1), 0);
        a.jal(f);
        a.jal(f);
        a.halt();
        a.bind(f).unwrap();
        a.load(r(3), r(1), 8);
        a.addi(r(5), r(5), 1);
        a.jr(Reg::LINK);
        let p = a.assemble().unwrap();

        let scheme = Scheme::Trap {
            handlers: HandlerKind::PerReference,
            body: HandlerBody::Generic { len: 3 },
        };
        let inst = instrument(&p, &scheme).unwrap();
        let mut e = Executor::new(&inst.program);
        e.run(&mut AlwaysMiss, 10_000).unwrap();
        assert_eq!(e.state().int(r(5)), 2, "function called twice and returned");
        assert!(e.state().halted());
    }

    #[test]
    fn prefetch_handler_emits_prefetches() {
        let p = looped_kernel();
        let scheme = Scheme::Trap {
            handlers: HandlerKind::Single,
            body: HandlerBody::NextLinePrefetch { lines: 2 },
        };
        let inst = instrument(&p, &scheme).unwrap();
        let h = inst.refs[0].handler_pc;
        assert_eq!(inst.program.fetch(h).unwrap(), Instr::ReadMar { rd: r(24) });
        assert!(matches!(inst.program.fetch(h + 4).unwrap(), Instr::Prefetch { offset: 32, .. }));
        assert!(matches!(inst.program.fetch(h + 8).unwrap(), Instr::Prefetch { offset: 64, .. }));
        assert_eq!(inst.program.fetch(h + 12).unwrap(), Instr::JumpMhrr);
    }

    #[test]
    fn sampled_handler_runs_the_chain_every_period() {
        // Walk 32 distinct lines (32 misses under AlwaysMiss); with period 4
        // the 5-instruction chain must run exactly 8 times.
        let mut a = Asm::new();
        let (p, e, v) = (r(1), r(2), r(3));
        a.li(p, 0x10_0000);
        a.li(e, 0x10_0000 + 32 * 32);
        let top = a.here("top");
        a.load(v, p, 0);
        a.addi(p, p, 32);
        a.branch(Cond::Lt, p, e, top);
        a.halt();
        let prog = a.assemble().unwrap();
        let scheme = Scheme::Trap {
            handlers: HandlerKind::Single,
            body: HandlerBody::SampledGeneric { len: 5, period: 4 },
        };
        let inst = instrument(&prog, &scheme).unwrap();
        let mut e = Executor::new(&inst.program);
        // Preload the countdown register so the first sample fires after 4.
        e.state_mut().set_int(Reg::int(26), 4);
        e.run(&mut AlwaysMiss, 100_000).unwrap();
        // The chain increments r24 by 5 per sample: 8 samples.
        assert_eq!(e.state().int(Reg::int(24)), 8 * 5);
    }

    #[test]
    fn data_image_is_preserved() {
        let mut a = Asm::new();
        a.word(0x9000, 77);
        a.li(r(1), 0x9000);
        a.load(r(2), r(1), 0);
        a.halt();
        let p = a.assemble().unwrap();
        let scheme =
            Scheme::Trap { handlers: HandlerKind::Single, body: HandlerBody::Generic { len: 1 } };
        let inst = instrument(&p, &scheme).unwrap();
        let mut e = Executor::new(&inst.program);
        e.run(&mut NeverMiss, 1000).unwrap();
        assert_eq!(e.state().int(r(2)), 77);
    }
}
