//! §4.1.1 — performance monitoring: exact per-reference miss profiles.
//!
//! Two tools, matching the paper's discussion:
//!
//! * [`profile_misses`] — unique per-reference counting handlers (one
//!   `setmhar` of hit overhead per reference, exact counts, no hashing);
//! * [`profile_misses_hashed`] — the paper's single ~10-instruction
//!   hash-table handler keyed on the MHRR: **zero hit overhead**, with
//!   possible bucket collisions.

use imo_cpu::RunResult;
use imo_isa::Program;

use crate::experiment::ExperimentError;
use crate::instrument::{instrument, HandlerBody, HandlerKind, Scheme};
use crate::machine::Machine;

/// Default base address for profiler tables (above all workload data).
pub const PROFILE_TABLE_BASE: u64 = 0x7000_0000;

/// Miss count for one static reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SiteCount {
    /// Address of the reference in the *original* program.
    pub old_pc: u64,
    /// Address in the instrumented program.
    pub new_pc: u64,
    /// Primary-cache misses suffered by this static reference.
    pub misses: u64,
}

/// A per-reference miss profile.
#[derive(Debug, Clone)]
pub struct MissProfile {
    /// Counts per static reference, in text order.
    pub sites: Vec<SiteCount>,
    /// Timing result of the instrumented run (for overhead assessment).
    pub run: RunResult,
}

impl MissProfile {
    /// Sites sorted by miss count, hottest first.
    pub fn hottest(&self) -> Vec<SiteCount> {
        let mut v = self.sites.clone();
        v.sort_by(|a, b| b.misses.cmp(&a.misses).then(a.old_pc.cmp(&b.old_pc)));
        v
    }

    /// Total misses attributed to instrumented references.
    pub fn total_misses(&self) -> u64 {
        self.sites.iter().map(|s| s.misses).sum()
    }

    /// Exports the profile into an observability metrics registry:
    /// `profile.sites`, `profile.total_misses`, and per-site
    /// `profile.site.<old_pc>` counters.
    pub fn record_metrics(&self, m: &mut imo_obs::MetricsRegistry) {
        m.set("profile.sites", self.sites.len() as u64);
        m.set("profile.total_misses", self.total_misses());
        for s in &self.sites {
            m.set(&format!("profile.site.{:#x}", s.old_pc), s.misses);
        }
    }
}

/// Profiles `program` on `machine` with exact per-reference counters.
///
/// # Errors
///
/// Returns [`ExperimentError`] if instrumentation or simulation fails.
pub fn profile_misses(
    program: &Program,
    machine: &Machine,
) -> Result<MissProfile, ExperimentError> {
    let scheme = Scheme::Trap {
        handlers: HandlerKind::PerReference,
        body: HandlerBody::CountPerReference { table_base: PROFILE_TABLE_BASE },
    };
    let inst = instrument(program, &scheme)?;
    let (run, state) = machine.run_full(&inst.program)?;
    let sites = inst
        .refs
        .iter()
        .map(|r| SiteCount {
            old_pc: r.old_pc,
            new_pc: r.new_pc,
            misses: state.memory().read(r.counter_slot.expect("counting body has slots")),
        })
        .collect();
    Ok(MissProfile { sites, run })
}

/// Profiles `program` with the zero-hit-overhead hash handler. Returns the
/// per-reference counts recovered from the bucket table; references whose
/// return addresses collide in the table share a bucket (collisions are
/// reported by [`HashedProfile::collisions`]).
///
/// # Errors
///
/// Returns [`ExperimentError`] if instrumentation or simulation fails.
pub fn profile_misses_hashed(
    program: &Program,
    machine: &Machine,
    buckets: u64,
) -> Result<HashedProfile, ExperimentError> {
    let scheme = Scheme::Trap {
        handlers: HandlerKind::Single,
        body: HandlerBody::PcHash { table_base: PROFILE_TABLE_BASE, buckets },
    };
    let inst = instrument(program, &scheme)?;
    let (run, state) = machine.run_full(&inst.program)?;
    let bucket_of = |ret: u64| ((ret >> 2) & (buckets - 1)) * 8 + PROFILE_TABLE_BASE;
    let mut seen = std::collections::HashMap::new();
    let mut collisions = 0;
    let mut sites = Vec::with_capacity(inst.refs.len());
    for r in &inst.refs {
        let b = bucket_of(r.return_pc);
        if let Some(_prev) = seen.insert(b, r.old_pc) {
            collisions += 1;
        }
        sites.push(SiteCount {
            old_pc: r.old_pc,
            new_pc: r.new_pc,
            misses: state.memory().read(b),
        });
    }
    Ok(HashedProfile { profile: MissProfile { sites, run }, collisions })
}

/// Result of [`profile_misses_hashed`].
#[derive(Debug, Clone)]
pub struct HashedProfile {
    /// The recovered profile (counts are per-bucket).
    pub profile: MissProfile,
    collisions: usize,
}

impl HashedProfile {
    /// Number of static references whose buckets collided with another
    /// reference (their counts are merged).
    pub fn collisions(&self) -> usize {
        self.collisions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imo_isa::{Asm, Cond, Reg};

    /// Two loads: one walks lines (misses every 4th iteration), the other
    /// hammers a single word (misses once).
    fn two_site_kernel() -> Program {
        let mut a = Asm::new();
        let (i, n, p, hot, v) = (Reg::int(1), Reg::int(2), Reg::int(3), Reg::int(4), Reg::int(5));
        a.li(i, 0);
        a.li(n, 64);
        a.li(p, 0x10_0000);
        a.li(hot, 0x20_0400); // distinct cache set from the walk and counters
        let top = a.here("top");
        a.load(v, p, 0); // cold-walks: misses every 4th (8B stride, 32B lines)
        a.load(v, hot, 0); // hot word: misses once
        a.addi(p, p, 8);
        a.addi(i, i, 1);
        a.branch(Cond::Lt, i, n, top);
        a.halt();
        a.assemble().unwrap()
    }

    #[test]
    fn exact_profile_distinguishes_sites() {
        let p = two_site_kernel();
        let prof = profile_misses(&p, &Machine::default_ooo()).unwrap();
        assert_eq!(prof.sites.len(), 2);
        let hot = prof.hottest();
        // 64 iterations / 4 per line = 16 cold misses, plus a few conflict
        // misses from the handler's own counter traffic (the paper's
        // "tolerable data cache perturbations").
        assert!((16..=24).contains(&hot[0].misses), "walking site: {}", hot[0].misses);
        assert!((1..=6).contains(&hot[1].misses), "hot-word site: {}", hot[1].misses);
        assert!(hot[0].misses > 2 * hot[1].misses, "ordering is unambiguous");
    }

    #[test]
    fn profile_agrees_across_machines() {
        let p = two_site_kernel();
        let a = profile_misses(&p, &Machine::default_ooo()).unwrap();
        let b = profile_misses(&p, &Machine::default_in_order()).unwrap();
        // Different cache geometries perturb differently, but both machines
        // must identify the same hottest site, with comparable totals.
        assert_eq!(a.hottest()[0].old_pc, b.hottest()[0].old_pc);
        let (ta, tb) = (a.total_misses() as f64, b.total_misses() as f64);
        assert!((ta - tb).abs() / ta.max(tb) < 0.5, "totals comparable: {ta} vs {tb}");
    }

    #[test]
    fn hashed_profile_matches_exact_when_collision_free() {
        let p = two_site_kernel();
        let exact = profile_misses(&p, &Machine::default_ooo()).unwrap();
        let hashed = profile_misses_hashed(&p, &Machine::default_ooo(), 4096).unwrap();
        assert_eq!(hashed.collisions(), 0);
        for (e, h) in exact.sites.iter().zip(hashed.profile.sites.iter()) {
            assert_eq!(e.old_pc, h.old_pc);
            // The two instrumentations perturb the cache differently, so
            // counts agree only approximately.
            let (em, hm) = (e.misses as i64, h.misses as i64);
            assert!((em - hm).abs() <= 6, "site {:#x}: {em} vs {hm}", e.old_pc);
        }
    }

    #[test]
    fn hashed_profile_has_no_per_ref_inline_overhead() {
        let p = two_site_kernel();
        let exact = profile_misses(&p, &Machine::default_ooo()).unwrap();
        let hashed = profile_misses_hashed(&p, &Machine::default_ooo(), 4096).unwrap();
        // The exact profiler executes one setmhar per reference; the hash
        // profiler does not, so it retires fewer instructions.
        assert!(hashed.profile.run.instructions < exact.run.instructions);
    }
}
