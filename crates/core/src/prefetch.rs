//! §4.1.2 — software-controlled prefetching from the miss handler.
//!
//! The paper's "place prefetches directly in the miss handler" option:
//! prefetch overhead is induced *only when the application is actually
//! suffering from cache misses* (and hence prefetches should be beneficial).
//! The handler reads the missing address from the MAR and prefetches the
//! next few lines — effective for the streaming access patterns where
//! prefetching pays off.

use imo_cpu::RunResult;
use imo_isa::Program;

use crate::experiment::ExperimentError;
use crate::instrument::{instrument, HandlerBody, HandlerKind, Instrumented, Scheme};
use crate::machine::Machine;

/// Rewrites `program` so that every primary miss triggers a handler that
/// prefetches the following `lines` cache lines.
///
/// # Errors
///
/// Returns [`crate::instrument::InstrumentError`] via [`ExperimentError`] if
/// the program cannot be instrumented.
pub fn add_adaptive_prefetching(
    program: &Program,
    lines: u32,
) -> Result<Instrumented, ExperimentError> {
    Ok(instrument(
        program,
        &Scheme::Trap {
            handlers: HandlerKind::Single,
            body: HandlerBody::NextLinePrefetch { lines },
        },
    )?)
}

/// Baseline-vs-prefetched comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrefetchComparison {
    /// The uninstrumented run.
    pub baseline: RunResult,
    /// The run with in-handler prefetching.
    pub prefetched: RunResult,
}

impl PrefetchComparison {
    /// `baseline cycles / prefetched cycles` (> 1 means prefetching won).
    pub fn speedup(&self) -> f64 {
        self.baseline.cycles as f64 / self.prefetched.cycles.max(1) as f64
    }

    /// Fraction of baseline primary misses eliminated.
    pub fn miss_reduction(&self) -> f64 {
        let b = self.baseline.mem.l1d_misses.max(1) as f64;
        1.0 - self.prefetched.mem.l1d_misses as f64 / b
    }
}

/// Runs `program` with and without in-handler prefetching of `lines` lines.
///
/// # Errors
///
/// Returns [`ExperimentError`] if instrumentation or simulation fails.
pub fn evaluate_prefetching(
    program: &Program,
    machine: &Machine,
    lines: u32,
) -> Result<PrefetchComparison, ExperimentError> {
    let baseline = machine.run(program)?;
    let inst = add_adaptive_prefetching(program, lines)?;
    let prefetched = machine.run(&inst.program)?;
    Ok(PrefetchComparison { baseline, prefetched })
}

#[cfg(test)]
mod tests {
    use super::*;
    use imo_isa::{Asm, Cond, Reg};

    /// A streaming kernel: sequential walk over 2048 lines with some compute.
    fn streaming_kernel() -> Program {
        let mut a = Asm::new();
        let (i, n, p, v, s) = (Reg::int(1), Reg::int(2), Reg::int(3), Reg::int(4), Reg::int(5));
        a.li(i, 0);
        a.li(n, 8192);
        a.li(p, 0x10_0000);
        let top = a.here("top");
        a.load(v, p, 0);
        a.add(s, s, v);
        a.addi(p, p, 8);
        a.addi(i, i, 1);
        a.branch(Cond::Lt, i, n, top);
        a.halt();
        a.assemble().unwrap()
    }

    #[test]
    fn prefetching_reduces_misses_and_time_on_streams() {
        let p = streaming_kernel();
        for machine in [Machine::default_ooo(), Machine::default_in_order()] {
            let cmp = evaluate_prefetching(&p, &machine, 2).unwrap();
            assert!(
                cmp.miss_reduction() > 0.4,
                "{}: miss reduction {}",
                machine.name(),
                cmp.miss_reduction()
            );
            assert!(cmp.speedup() > 1.05, "{}: speedup {}", machine.name(), cmp.speedup());
        }
    }

    #[test]
    fn prefetching_is_cheap_when_there_are_no_misses() {
        // Hot kernel: hammer one line; the handler almost never runs, so the
        // instrumented run should cost barely more than the baseline.
        let mut a = Asm::new();
        let (i, n, p, v) = (Reg::int(1), Reg::int(2), Reg::int(3), Reg::int(4));
        a.li(i, 0);
        a.li(n, 2000);
        a.li(p, 0x10_0000);
        let top = a.here("top");
        a.load(v, p, 0);
        a.addi(i, i, 1);
        a.branch(Cond::Lt, i, n, top);
        a.halt();
        let prog = a.assemble().unwrap();
        let cmp = evaluate_prefetching(&prog, &Machine::default_ooo(), 2).unwrap();
        let overhead = cmp.prefetched.cycles as f64 / cmp.baseline.cycles as f64;
        assert!(overhead < 1.05, "near-zero overhead on hits: {overhead}");
    }
}
