//! Property-based tests for the binary-rewriting instrumenter: for *any*
//! generated program, instrumentation must preserve the architectural
//! results (handler transparency) while relocating all control flow
//! correctly. Runs on the in-tree `imo_util::check` harness (48 seeded
//! cases per property, as under proptest).

use imo_util::check::{Checker, Gen};
use imo_util::{ensure, ensure_eq};

use imo_core::instrument::{instrument, HandlerBody, HandlerKind, Scheme};
use imo_isa::exec::{AlwaysMiss, Executor, NeverMiss};
use imo_isa::{Asm, Cond, Instr, Program, Reg};

fn arb_op(g: &mut Gen) -> Instr {
    match g.int(0u32..4) {
        0 => Instr::Add {
            rd: Reg::int(g.int(1u8..8)),
            rs: Reg::int(g.int(1u8..8)),
            rt: Reg::int(g.int(1u8..8)),
        },
        1 => Instr::Addi {
            rd: Reg::int(g.int(1u8..8)),
            rs: Reg::int(g.int(1u8..8)),
            imm: g.int(-32i64..32),
        },
        2 => Instr::Load {
            rd: Reg::int(g.int(1u8..8)),
            base: Reg::int(15),
            offset: (g.int(0u64..16) * 8) as i64,
            kind: imo_isa::MemKind::Normal,
        },
        _ => Instr::Store {
            rs: Reg::int(g.int(1u8..8)),
            base: Reg::int(15),
            offset: (g.int(0u64..16) * 8) as i64,
            kind: imo_isa::MemKind::Normal,
        },
    }
}

/// Random programs with loads/stores, a loop, a conditional skip and a
/// call/return — the control-flow shapes relocation must survive.
fn arb_program(g: &mut Gen) -> Program {
    let body = g.vec(1..8, arb_op);
    let func = g.vec(1..8, arb_op);
    let trips = g.int(1u64..6);
    let use_call = g.bool();
    let mut a = Asm::new();
    a.li(Reg::int(15), 0x10_0000);
    let f = a.label("f");
    let skip = a.label("skip");
    let (ctr, lim) = (Reg::int(14), Reg::int(13));
    a.li(ctr, 0);
    a.li(lim, trips as i64);
    let top = a.here("top");
    for i in &body {
        a.emit(*i);
    }
    // Conditional forward skip exercised on alternating iterations.
    a.andi(Reg::int(12), ctr, 1);
    a.branch(Cond::Ne, Reg::int(12), Reg::ZERO, skip);
    if use_call {
        a.jal(f);
    } else {
        a.addi(Reg::int(11), Reg::int(11), 1);
    }
    a.bind(skip).unwrap();
    a.addi(ctr, ctr, 1);
    a.branch(Cond::Lt, ctr, lim, top);
    a.halt();
    a.bind(f).unwrap();
    for i in &func {
        a.emit(*i);
    }
    a.jr(Reg::LINK);
    a.assemble().expect("generated program assembles")
}

fn schemes() -> Vec<Scheme> {
    vec![
        Scheme::Trap { handlers: HandlerKind::Single, body: HandlerBody::Generic { len: 3 } },
        Scheme::Trap { handlers: HandlerKind::PerReference, body: HandlerBody::Generic { len: 1 } },
        Scheme::ConditionCode {
            handlers: HandlerKind::Single,
            body: HandlerBody::Generic { len: 2 },
        },
        Scheme::Trap { handlers: HandlerKind::Single, body: HandlerBody::CountInRegister },
    ]
}

/// Instrumented programs compute identical architectural results under
/// both extreme oracles (handlers fully transparent), for every scheme.
#[test]
fn instrumentation_preserves_semantics() {
    Checker::new("instrumentation_preserves_semantics").cases(48).run(|g| {
        let p = arb_program(g);
        let mut plain = Executor::new(&p);
        plain.run(&mut NeverMiss, 1_000_000).expect("plain runs");
        for scheme in schemes() {
            let inst = instrument(&p, &scheme).expect("instruments");
            for all_miss in [false, true] {
                let mut e = Executor::new(&inst.program);
                if all_miss {
                    e.run(&mut AlwaysMiss, 2_000_000).expect("instrumented runs (miss)");
                } else {
                    e.run(&mut NeverMiss, 2_000_000).expect("instrumented runs (hit)");
                }
                ensure!(e.state().halted());
                for r in 1..16u8 {
                    ensure_eq!(
                        e.state().int(Reg::int(r)),
                        plain.state().int(Reg::int(r)),
                        "r{} under {:?} (all_miss={})",
                        r,
                        scheme,
                        all_miss
                    );
                }
            }
        }
        Ok(())
    });
}

/// Every relocated control target names a real instruction, and every
/// recorded reference site points at a memory operation whose handler
/// ends in `jmhrr`.
#[test]
fn relocation_is_sound() {
    Checker::new("relocation_is_sound").cases(48).run(|g| {
        let p = arb_program(g);
        for scheme in schemes() {
            let inst = instrument(&p, &scheme).expect("instruments");
            for (_, ins) in inst.program.iter() {
                if let Some(t) = ins.static_target() {
                    if t != 0 {
                        ensure!(inst.program.fetch(t).is_some(), "dangling {t:#x} in {ins}");
                    }
                }
            }
            for site in &inst.refs {
                let at = inst.program.fetch(site.new_pc).expect("ref site exists");
                ensure!(at.is_data_ref(), "{at} at {:#x}", site.new_pc);
                let mut pc = site.handler_pc;
                let mut steps = 0;
                loop {
                    let i = inst.program.fetch(pc).expect("handler body exists");
                    if i == Instr::JumpMhrr {
                        break;
                    }
                    pc += 4;
                    steps += 1;
                    ensure!(steps < 200, "handler unterminated");
                }
            }
        }
        Ok(())
    });
}

/// Static overhead accounting matches the actual size growth.
#[test]
fn overhead_accounting_is_exact() {
    Checker::new("overhead_accounting_is_exact").cases(48).run(|g| {
        let p = arb_program(g);
        for scheme in schemes() {
            let inst = instrument(&p, &scheme).expect("instruments");
            ensure_eq!(
                inst.program.len(),
                p.len() + inst.inline_overhead + inst.handler_instructions
            );
        }
        Ok(())
    });
}
