//! Property-based tests for the binary-rewriting instrumenter: for *any*
//! generated program, instrumentation must preserve the architectural
//! results (handler transparency) while relocating all control flow
//! correctly.

use proptest::prelude::*;

use imo_core::instrument::{instrument, HandlerBody, HandlerKind, Scheme};
use imo_isa::exec::{AlwaysMiss, Executor, NeverMiss};
use imo_isa::{Asm, Cond, Instr, Program, Reg};

/// Random programs with loads/stores, a loop, a conditional skip and a
/// call/return — the control-flow shapes relocation must survive.
fn arb_program() -> impl Strategy<Value = Program> {
    let op = prop_oneof![
        (1u8..8, 1u8..8, 1u8..8).prop_map(|(d, s, t)| Instr::Add {
            rd: Reg::int(d),
            rs: Reg::int(s),
            rt: Reg::int(t)
        }),
        (1u8..8, 1u8..8, -32i64..32).prop_map(|(d, s, imm)| Instr::Addi {
            rd: Reg::int(d),
            rs: Reg::int(s),
            imm
        }),
        (1u8..8, 0u64..16).prop_map(|(d, o)| Instr::Load {
            rd: Reg::int(d),
            base: Reg::int(15),
            offset: (o * 8) as i64,
            kind: imo_isa::MemKind::Normal
        }),
        (1u8..8, 0u64..16).prop_map(|(s, o)| Instr::Store {
            rs: Reg::int(s),
            base: Reg::int(15),
            offset: (o * 8) as i64,
            kind: imo_isa::MemKind::Normal
        }),
    ];
    (
        proptest::collection::vec(op.clone(), 1..8),
        proptest::collection::vec(op, 1..8),
        1u64..6,
        any::<bool>(),
    )
        .prop_map(|(body, func, trips, use_call)| {
            let mut a = Asm::new();
            a.li(Reg::int(15), 0x10_0000);
            let f = a.label("f");
            let skip = a.label("skip");
            let (ctr, lim) = (Reg::int(14), Reg::int(13));
            a.li(ctr, 0);
            a.li(lim, trips as i64);
            let top = a.here("top");
            for i in &body {
                a.emit(*i);
            }
            // Conditional forward skip exercised on alternating iterations.
            a.andi(Reg::int(12), ctr, 1);
            a.branch(Cond::Ne, Reg::int(12), Reg::ZERO, skip);
            if use_call {
                a.jal(f);
            } else {
                a.addi(Reg::int(11), Reg::int(11), 1);
            }
            a.bind(skip).unwrap();
            a.addi(ctr, ctr, 1);
            a.branch(Cond::Lt, ctr, lim, top);
            a.halt();
            a.bind(f).unwrap();
            for i in &func {
                a.emit(*i);
            }
            a.jr(Reg::LINK);
            a.assemble().expect("generated program assembles")
        })
}

fn schemes() -> Vec<Scheme> {
    vec![
        Scheme::Trap { handlers: HandlerKind::Single, body: HandlerBody::Generic { len: 3 } },
        Scheme::Trap {
            handlers: HandlerKind::PerReference,
            body: HandlerBody::Generic { len: 1 },
        },
        Scheme::ConditionCode {
            handlers: HandlerKind::Single,
            body: HandlerBody::Generic { len: 2 },
        },
        Scheme::Trap { handlers: HandlerKind::Single, body: HandlerBody::CountInRegister },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Instrumented programs compute identical architectural results under
    /// both extreme oracles (handlers fully transparent), for every scheme.
    #[test]
    fn instrumentation_preserves_semantics(p in arb_program()) {
        let mut plain = Executor::new(&p);
        plain.run(&mut NeverMiss, 1_000_000).expect("plain runs");
        for scheme in schemes() {
            let inst = instrument(&p, &scheme).expect("instruments");
            for all_miss in [false, true] {
                let mut e = Executor::new(&inst.program);
                if all_miss {
                    e.run(&mut AlwaysMiss, 2_000_000).expect("instrumented runs (miss)");
                } else {
                    e.run(&mut NeverMiss, 2_000_000).expect("instrumented runs (hit)");
                }
                prop_assert!(e.state().halted());
                for r in 1..16u8 {
                    prop_assert_eq!(
                        e.state().int(Reg::int(r)),
                        plain.state().int(Reg::int(r)),
                        "r{} under {:?} (all_miss={})", r, scheme, all_miss
                    );
                }
            }
        }
    }

    /// Every relocated control target names a real instruction, and every
    /// recorded reference site points at a memory operation whose handler
    /// ends in `jmhrr`.
    #[test]
    fn relocation_is_sound(p in arb_program()) {
        for scheme in schemes() {
            let inst = instrument(&p, &scheme).expect("instruments");
            for (_, ins) in inst.program.iter() {
                if let Some(t) = ins.static_target() {
                    if t != 0 {
                        prop_assert!(inst.program.fetch(t).is_some(), "dangling {t:#x} in {ins}");
                    }
                }
            }
            for site in &inst.refs {
                let at = inst.program.fetch(site.new_pc).expect("ref site exists");
                prop_assert!(at.is_data_ref(), "{at} at {:#x}", site.new_pc);
                let mut pc = site.handler_pc;
                let mut steps = 0;
                loop {
                    let i = inst.program.fetch(pc).expect("handler body exists");
                    if i == Instr::JumpMhrr {
                        break;
                    }
                    pc += 4;
                    steps += 1;
                    prop_assert!(steps < 200, "handler unterminated");
                }
            }
        }
    }

    /// Static overhead accounting matches the actual size growth.
    #[test]
    fn overhead_accounting_is_exact(p in arb_program()) {
        for scheme in schemes() {
            let inst = instrument(&p, &scheme).expect("instruments");
            prop_assert_eq!(
                inst.program.len(),
                p.len() + inst.inline_overhead + inst.handler_instructions
            );
        }
    }
}
