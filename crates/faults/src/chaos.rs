//! # Deterministic chaos engineering for the sweep service
//!
//! The fault plans in the crate root poison the *simulated* substrate; this
//! module poisons the *measurement infrastructure itself* — the `imo-serve`
//! worker pool and its TCP framing — while keeping the schedule every bit as
//! reproducible. A [`ChaosPlan`] decides, purely from the plan seed and the
//! identity of the work being attempted, whether a worker crashes mid-cell,
//! stalls forever, tears a frame in half, corrupts a result byte, duplicates
//! a done frame, drops its connection, or retires gracefully.
//!
//! Two properties make chaos runs debuggable and CI-safe:
//!
//! * **Content addressing.** Every draw is keyed by `(cell index, attempt)`
//!   — *not* by which worker got the job or when. The same sweep under the
//!   same plan produces the same failure schedule regardless of worker
//!   count, scheduling jitter or host load, so a chaos soak can assert
//!   byte-identical output against a clean serial run.
//! * **Zero perturbation when disabled.** A plan with all rates zero (the
//!   [`ChaosConfig::none`] construction) never consumes randomness and
//!   injects nothing, so zero-chaos server runs stay bit-identical to a
//!   server without chaos hooks.
//!
//! Like [`FaultPlan`](crate::FaultPlan), each site draws from its own stream
//! split off the plan seed: the *worker* site (kill/stall/drop-conn — the
//! worker process misbehaves before or while running the cell), the *wire*
//! site (torn/corrupt/duplicate frames — the result is damaged on its way
//! back), and the *exit* site (graceful retirement after a completed cell).
//! Within a site the kinds partition a single uniform draw, so at most one
//! event fires per site per attempt; a worker-site event preempts a
//! wire-site event for the same attempt (a killed worker never gets to
//! mangle its reply).

use imo_util::json::Json;
use imo_util::rng::mix64;
use imo_util::snapshot::{f64_json, get_f64, get_u64, u64_json, Snapshot, SnapshotError};

use crate::draw;

// Site tags, disjoint from the simulation-fault sites in the crate root.
// Fixed for all time — changing them invalidates recorded chaos schedules.
const SITE_CHAOS_WORKER: u64 = 0x1996_0011;
const SITE_CHAOS_WIRE: u64 = 0x1996_0012;
const SITE_CHAOS_EXIT: u64 = 0x1996_0013;

/// A chaos event injected on one `(cell index, attempt)` dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosEvent {
    /// The worker drops its connection (exits) before touching the cell.
    DropConn,
    /// The worker accepts the job and never replies; only the server's
    /// dispatch deadline can recover it.
    Stall,
    /// The worker dies right after emitting its `after_slices`-th
    /// preemption checkpoint, leaving a resumable in-flight cell behind.
    Kill {
        /// How many checkpoint slices complete before the crash
        /// (uniform in `1..=kill_slices`).
        after_slices: u64,
    },
    /// The worker completes the cell but writes only a prefix of the done
    /// frame before dying (a torn/short write).
    TornWrite,
    /// The worker completes the cell but a byte of the result payload is
    /// flipped in flight; the frame parses or hash-checks wrong.
    CorruptFrame,
    /// The done frame arrives twice; the server must deduplicate.
    DupDone,
}

/// Per-site chaos rates and the plan seed.
///
/// Rates are probabilities in `[0, 1]` applied independently per
/// `(cell index, attempt)`; within each site the kinds partition a single
/// uniform draw. All-zero rates (the [`ChaosConfig::none`] construction)
/// are guaranteed to never consume randomness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosConfig {
    /// Seed every site stream is split from.
    pub seed: u64,
    /// Probability a dispatch's worker is killed mid-cell (after a
    /// checkpoint slice).
    pub kill_rate: f64,
    /// Maximum checkpoint slices a killed worker survives (uniform in
    /// `1..=kill_slices`).
    pub kill_slices: u64,
    /// Probability a dispatch's worker stalls forever.
    pub stall_rate: f64,
    /// Probability a dispatch's worker drops the connection immediately.
    pub drop_conn_rate: f64,
    /// Probability the done frame is torn (short write, then death).
    pub torn_rate: f64,
    /// Probability the done frame's payload is corrupted in flight.
    pub corrupt_rate: f64,
    /// Probability the done frame is duplicated.
    pub dup_done_rate: f64,
    /// Probability a worker retires gracefully after completing a cell
    /// (announced with a `serve.bye` frame, so the server respawns it
    /// without charging a failure).
    pub exit_rate: f64,
}

impl ChaosConfig {
    /// A plan that injects nothing (all rates zero).
    #[must_use]
    pub fn none(seed: u64) -> ChaosConfig {
        ChaosConfig {
            seed,
            kill_rate: 0.0,
            kill_slices: 2,
            stall_rate: 0.0,
            drop_conn_rate: 0.0,
            torn_rate: 0.0,
            corrupt_rate: 0.0,
            dup_done_rate: 0.0,
            exit_rate: 0.0,
        }
    }

    /// Whether any worker-site event (kill/stall/drop-conn) can fire.
    #[must_use]
    pub fn has_worker(&self) -> bool {
        self.kill_rate > 0.0 || self.stall_rate > 0.0 || self.drop_conn_rate > 0.0
    }

    /// Whether any wire-site event (torn/corrupt/duplicate) can fire.
    #[must_use]
    pub fn has_wire(&self) -> bool {
        self.torn_rate > 0.0 || self.corrupt_rate > 0.0 || self.dup_done_rate > 0.0
    }

    /// Whether graceful retirement can fire.
    #[must_use]
    pub fn has_exit(&self) -> bool {
        self.exit_rate > 0.0
    }

    /// Whether the plan can inject anything at all.
    #[must_use]
    pub fn is_none(&self) -> bool {
        !self.has_worker() && !self.has_wire() && !self.has_exit()
    }

    /// Dumps the plan's knobs into a shared metrics registry under the
    /// `chaos.` prefix (rates in parts per million, as in
    /// [`FaultConfig::record_metrics`](crate::FaultConfig::record_metrics)).
    pub fn record_metrics(&self, m: &mut imo_obs::MetricsRegistry) {
        let ppm = |rate: f64| (rate * 1e6).round() as u64;
        m.set("chaos.seed", self.seed);
        m.set("chaos.kill_rate_ppm", ppm(self.kill_rate));
        m.set("chaos.kill_slices", self.kill_slices);
        m.set("chaos.stall_rate_ppm", ppm(self.stall_rate));
        m.set("chaos.drop_conn_rate_ppm", ppm(self.drop_conn_rate));
        m.set("chaos.torn_rate_ppm", ppm(self.torn_rate));
        m.set("chaos.corrupt_rate_ppm", ppm(self.corrupt_rate));
        m.set("chaos.dup_done_rate_ppm", ppm(self.dup_done_rate));
        m.set("chaos.exit_rate_ppm", ppm(self.exit_rate));
    }
}

impl Default for ChaosConfig {
    fn default() -> ChaosConfig {
        ChaosConfig::none(0)
    }
}

impl Snapshot for ChaosConfig {
    const KIND: &'static str = "chaos.config";
    const VERSION: u32 = 1;

    fn encode(&self) -> Json {
        Json::obj([
            ("seed", u64_json(self.seed)),
            ("kill_rate", f64_json(self.kill_rate)),
            ("kill_slices", u64_json(self.kill_slices)),
            ("stall_rate", f64_json(self.stall_rate)),
            ("drop_conn_rate", f64_json(self.drop_conn_rate)),
            ("torn_rate", f64_json(self.torn_rate)),
            ("corrupt_rate", f64_json(self.corrupt_rate)),
            ("dup_done_rate", f64_json(self.dup_done_rate)),
            ("exit_rate", f64_json(self.exit_rate)),
        ])
    }

    fn decode(data: &Json) -> Result<Self, SnapshotError> {
        Ok(ChaosConfig {
            seed: get_u64(data, "seed")?,
            kill_rate: get_f64(data, "kill_rate")?,
            kill_slices: get_u64(data, "kill_slices")?,
            stall_rate: get_f64(data, "stall_rate")?,
            drop_conn_rate: get_f64(data, "drop_conn_rate")?,
            torn_rate: get_f64(data, "torn_rate")?,
            corrupt_rate: get_f64(data, "corrupt_rate")?,
            dup_done_rate: get_f64(data, "dup_done_rate")?,
            exit_rate: get_f64(data, "exit_rate")?,
        })
    }
}

/// A deterministic chaos schedule over `(cell index, attempt)` pairs.
///
/// Unlike the simulation-fault streams, the plan keeps no draw cursor:
/// every event is a pure function of the plan seed and the dispatch
/// identity, so any process — a worker deciding how to misbehave, the soak
/// harness predicting what should have happened — computes the same answer
/// with no state to carry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosPlan {
    cfg: ChaosConfig,
}

impl ChaosPlan {
    /// A plan over the given configuration.
    #[must_use]
    pub fn new(cfg: ChaosConfig) -> ChaosPlan {
        ChaosPlan { cfg }
    }

    /// The plan that injects nothing.
    #[must_use]
    pub fn none() -> ChaosPlan {
        ChaosPlan { cfg: ChaosConfig::none(0) }
    }

    /// The configuration this plan was built from.
    #[must_use]
    pub fn config(&self) -> &ChaosConfig {
        &self.cfg
    }

    /// The chaos event (if any) injected on attempt `attempt` of cell
    /// `index`. A worker-site event preempts a wire-site event for the
    /// same attempt.
    #[must_use]
    pub fn dispatch(&self, index: u64, attempt: u64) -> Option<ChaosEvent> {
        let n = mix64(index, attempt);
        if self.cfg.has_worker() {
            let (u, mut rng) = draw(mix64(self.cfg.seed, SITE_CHAOS_WORKER), n);
            if u < self.cfg.drop_conn_rate {
                return Some(ChaosEvent::DropConn);
            } else if u < self.cfg.drop_conn_rate + self.cfg.stall_rate {
                return Some(ChaosEvent::Stall);
            } else if u < self.cfg.drop_conn_rate + self.cfg.stall_rate + self.cfg.kill_rate {
                let after_slices = rng.gen_range(1..self.cfg.kill_slices.max(1) + 1);
                return Some(ChaosEvent::Kill { after_slices });
            }
        }
        if self.cfg.has_wire() {
            let (u, _) = draw(mix64(self.cfg.seed, SITE_CHAOS_WIRE), n);
            if u < self.cfg.torn_rate {
                return Some(ChaosEvent::TornWrite);
            } else if u < self.cfg.torn_rate + self.cfg.corrupt_rate {
                return Some(ChaosEvent::CorruptFrame);
            } else if u < self.cfg.torn_rate + self.cfg.corrupt_rate + self.cfg.dup_done_rate {
                return Some(ChaosEvent::DupDone);
            }
        }
        None
    }

    /// Whether the worker that just completed attempt `attempt` of cell
    /// `index` retires gracefully (sends `serve.bye` and exits clean).
    #[must_use]
    pub fn exit_after(&self, index: u64, attempt: u64) -> bool {
        if !self.cfg.has_exit() {
            return false;
        }
        let (u, _) = draw(mix64(self.cfg.seed, SITE_CHAOS_EXIT), mix64(index, attempt));
        u < self.cfg.exit_rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stormy() -> ChaosConfig {
        let mut c = ChaosConfig::none(13);
        c.kill_rate = 0.15;
        c.kill_slices = 3;
        c.stall_rate = 0.05;
        c.drop_conn_rate = 0.1;
        c.torn_rate = 0.1;
        c.corrupt_rate = 0.1;
        c.dup_done_rate = 0.1;
        c.exit_rate = 0.1;
        c
    }

    #[test]
    fn schedule_is_a_pure_function_of_identity() {
        let plan = ChaosPlan::new(stormy());
        let again = ChaosPlan::new(stormy());
        for index in 0..512 {
            for attempt in 0..3 {
                assert_eq!(plan.dispatch(index, attempt), again.dispatch(index, attempt));
                assert_eq!(plan.exit_after(index, attempt), again.exit_after(index, attempt));
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut other = stormy();
        other.seed = 14;
        let a: Vec<_> = (0..512).map(|i| ChaosPlan::new(stormy()).dispatch(i, 0)).collect();
        let b: Vec<_> = (0..512).map(|i| ChaosPlan::new(other).dispatch(i, 0)).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn attempts_reroll_the_schedule() {
        // A cell that was killed on attempt 0 must not be doomed to the same
        // fate forever: the attempt number feeds the draw index.
        let plan = ChaosPlan::new(stormy());
        let first: Vec<_> = (0..512).map(|i| plan.dispatch(i, 0)).collect();
        let second: Vec<_> = (0..512).map(|i| plan.dispatch(i, 1)).collect();
        assert_ne!(first, second);
    }

    #[test]
    fn zero_rates_never_inject() {
        let plan = ChaosPlan::none();
        assert!(plan.config().is_none());
        for index in 0..1000 {
            assert_eq!(plan.dispatch(index, 0), None);
            assert!(!plan.exit_after(index, 0));
        }
    }

    #[test]
    fn kinds_partition_and_kill_slices_bounded() {
        // Rates sum to 1.0 at the worker site: every dispatch fires exactly
        // one worker event, and wire events are always preempted.
        let mut c = ChaosConfig::none(21);
        c.drop_conn_rate = 0.3;
        c.stall_rate = 0.3;
        c.kill_rate = 0.4;
        c.kill_slices = 4;
        c.torn_rate = 1.0; // would fire on every dispatch if not preempted
        let plan = ChaosPlan::new(c);
        let mut seen = [0u32; 3];
        for index in 0..2000 {
            match plan.dispatch(index, 0) {
                Some(ChaosEvent::DropConn) => seen[0] += 1,
                Some(ChaosEvent::Stall) => seen[1] += 1,
                Some(ChaosEvent::Kill { after_slices }) => {
                    assert!((1..=4).contains(&after_slices), "slices {after_slices}");
                    seen[2] += 1;
                }
                other => panic!("worker site saturated; got {other:?}"),
            }
        }
        assert!(seen.iter().all(|&k| k > 300), "all kinds appear: {seen:?}");
    }

    #[test]
    fn wire_rates_are_roughly_honoured() {
        let mut c = ChaosConfig::none(34);
        c.dup_done_rate = 0.25;
        let plan = ChaosPlan::new(c);
        let dups = (0..8000).filter(|&i| plan.dispatch(i, 0) == Some(ChaosEvent::DupDone)).count();
        assert!((1700..2300).contains(&dups), "dups {dups} out of expectation for p=0.25");
    }

    #[test]
    fn exit_site_is_independent_of_dispatch_site() {
        // The same (index, attempt) keys both sites, but through different
        // site tags: saturating the worker site must not change who retires.
        let calm = {
            let mut c = ChaosConfig::none(55);
            c.exit_rate = 0.2;
            ChaosPlan::new(c)
        };
        let storm = {
            let mut c = ChaosConfig::none(55);
            c.exit_rate = 0.2;
            c.kill_rate = 1.0;
            ChaosPlan::new(c)
        };
        for index in 0..512 {
            assert_eq!(calm.exit_after(index, 0), storm.exit_after(index, 0));
        }
    }

    #[test]
    fn config_snapshot_round_trips() {
        let cfg = stormy();
        let wire = cfg.to_wire();
        let back = ChaosConfig::from_wire(&wire).expect("decodes");
        assert_eq!(back, cfg);
        // Exact bit patterns survive, so a forwarded config draws the same
        // schedule in the worker process as in the server.
        assert_eq!(ChaosPlan::new(back).dispatch(17, 2), ChaosPlan::new(cfg).dispatch(17, 2));
    }

    #[test]
    fn config_snapshot_rejects_tampering() {
        let mut wire = stormy().to_wire();
        if let imo_util::json::Json::Obj(pairs) = &mut wire {
            pairs[0].1 = imo_util::json::Json::from("not-chaos");
        }
        assert!(matches!(ChaosConfig::from_wire(&wire), Err(SnapshotError::Kind { .. })));
    }

    #[test]
    fn record_metrics_exports_rates_in_ppm() {
        let mut m = imo_obs::MetricsRegistry::new();
        let mut c = ChaosConfig::none(9);
        c.kill_rate = 0.25;
        c.record_metrics(&mut m);
        assert_eq!(m.counter("chaos.seed"), Some(9));
        assert_eq!(m.counter("chaos.kill_rate_ppm"), Some(250_000));
        assert_eq!(m.counter("chaos.kill_slices"), Some(2));
    }
}
