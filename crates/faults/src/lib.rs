//! # Deterministic fault injection
//!
//! The paper's §4.3 access-control study literally builds on *induced
//! faults* — Blizzard-E poisons invalid blocks with bad ECC, and the
//! page-protection scheme relies on write traps — yet a simulator that
//! assumes a perfect substrate cannot tell whether the modelled protocols
//! degrade gracefully when the substrate misbehaves. This crate provides a
//! seed-driven fault *plan*: a reproducible schedule of injected faults at
//! three sites,
//!
//! * **interconnect** — directory protocol messages are dropped, duplicated
//!   or delayed ([`InterconnectFault`]);
//! * **cache line** — ECC events on invalidated lines: single-bit errors are
//!   corrected in hardware, double-bit errors are detect-only and lose the
//!   line ([`EccFault`]);
//! * **handler** — informing miss handlers overrun their cycle budget or
//!   dispatch through a stale MHAR ([`HandlerFault`]).
//!
//! Every site draws from its own [`imo_util::rng`] stream split off the plan
//! seed, so the schedule at one site is independent of how many draws another
//! site makes, and a `(seed, site, draw-index)` triple always yields the same
//! fault. Two simulations with the same trace and the same plan are
//! bit-identical; a plan with all rates zero never touches the RNG at all,
//! which keeps zero-fault runs cycle-identical to a simulator without fault
//! hooks.
//!
//! ## Example
//!
//! ```
//! use imo_faults::{FaultConfig, FaultPlan, InterconnectFault};
//!
//! let mut cfg = FaultConfig::none(42);
//! cfg.drop_rate = 0.5;
//! let plan = FaultPlan::new(cfg);
//! let mut a = plan.interconnect();
//! let mut b = plan.interconnect();
//! let first: Vec<Option<InterconnectFault>> = (0..8).map(|_| a.draw()).collect();
//! let second: Vec<Option<InterconnectFault>> = (0..8).map(|_| b.draw()).collect();
//! assert_eq!(first, second); // same plan => same schedule
//! assert!(first.iter().any(Option::is_some)); // rate 0.5 actually injects
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

use imo_util::rng::{mix64, SmallRng};

pub mod chaos;

pub use chaos::{ChaosConfig, ChaosEvent, ChaosPlan};

/// A fault injected on one directory protocol message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InterconnectFault {
    /// The message is lost; the sender times out and must retry.
    Drop,
    /// The message arrives twice; the receiver NACKs the duplicate.
    Duplicate,
    /// The message is delayed by the given number of cycles.
    Delay(u64),
}

/// An ECC event on a cache line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EccFault {
    /// Single-bit error: corrected transparently by the ECC logic.
    SingleBit,
    /// Double-bit error: detected but uncorrectable; the line's data is lost
    /// and must be refetched from the next level.
    DoubleBit,
}

/// A fault injected on one informing-trap handler invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HandlerFault {
    /// The handler overran its cycle budget by `extra_cycles`.
    Overrun {
        /// Extra pipeline bubbles charged to the trapping instruction.
        extra_cycles: u64,
    },
    /// The MHAR was stale; the machine must reload it before dispatching,
    /// stalling fetch for `reload_cycles`.
    StaleMhar {
        /// Fetch stall while the handler address is re-established.
        reload_cycles: u64,
    },
}

impl HandlerFault {
    /// The timing penalty this fault adds to the trapping instruction's
    /// fetch redirect.
    #[must_use]
    pub fn penalty_cycles(self) -> u64 {
        match self {
            HandlerFault::Overrun { extra_cycles } => extra_cycles,
            HandlerFault::StaleMhar { reload_cycles } => reload_cycles,
        }
    }
}

/// Per-site fault rates and the plan seed.
///
/// Rates are probabilities in `[0, 1]` applied independently per draw; at
/// each site the kinds partition a single uniform draw, so at most one fault
/// is injected per message / invalidation / trap. All-zero rates (the
/// [`FaultConfig::none`] construction) are guaranteed to never consume
/// randomness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Seed every site stream is split from.
    pub seed: u64,
    /// Probability a protocol message is dropped.
    pub drop_rate: f64,
    /// Probability a protocol message is duplicated.
    pub dup_rate: f64,
    /// Probability a protocol message is delayed.
    pub delay_rate: f64,
    /// Maximum delay of a delayed message (uniform in `1..=delay_cycles`).
    pub delay_cycles: u64,
    /// Probability an invalidated line suffers a single-bit ECC error.
    pub ecc_single_rate: f64,
    /// Probability an invalidated line suffers a double-bit ECC error.
    pub ecc_double_rate: f64,
    /// Probability an informing handler overruns its budget.
    pub handler_overrun_rate: f64,
    /// Extra cycles charged by a handler overrun.
    pub handler_overrun_cycles: u64,
    /// Probability an informing trap dispatches through a stale MHAR.
    pub stale_mhar_rate: f64,
    /// Fetch stall charged by a stale-MHAR dispatch.
    pub stale_mhar_cycles: u64,
    /// After this many *consecutive* faulty handler invocations the machine
    /// disables informing traps and reports `degraded` (graceful
    /// degradation; 0 means "never degrade").
    pub degrade_after: u32,
}

impl FaultConfig {
    /// A plan that injects nothing (all rates zero).
    #[must_use]
    pub fn none(seed: u64) -> FaultConfig {
        FaultConfig {
            seed,
            drop_rate: 0.0,
            dup_rate: 0.0,
            delay_rate: 0.0,
            delay_cycles: 900,
            ecc_single_rate: 0.0,
            ecc_double_rate: 0.0,
            handler_overrun_rate: 0.0,
            handler_overrun_cycles: 100,
            stale_mhar_rate: 0.0,
            stale_mhar_cycles: 50,
            degrade_after: 4,
        }
    }

    /// A plan that injects every site's faults at the same `rate` (split
    /// evenly across the kinds at each site) — the knob the resilience bench
    /// sweeps.
    #[must_use]
    pub fn uniform(seed: u64, rate: f64) -> FaultConfig {
        let mut c = FaultConfig::none(seed);
        c.drop_rate = rate / 3.0;
        c.dup_rate = rate / 3.0;
        c.delay_rate = rate / 3.0;
        c.ecc_single_rate = rate / 2.0;
        c.ecc_double_rate = rate / 2.0;
        c.handler_overrun_rate = rate / 2.0;
        c.stale_mhar_rate = rate / 2.0;
        c
    }

    /// Whether any interconnect fault can be injected.
    #[must_use]
    pub fn has_interconnect(&self) -> bool {
        self.drop_rate > 0.0 || self.dup_rate > 0.0 || self.delay_rate > 0.0
    }

    /// Whether any cache-line ECC fault can be injected.
    #[must_use]
    pub fn has_ecc(&self) -> bool {
        self.ecc_single_rate > 0.0 || self.ecc_double_rate > 0.0
    }

    /// Whether any handler fault can be injected.
    #[must_use]
    pub fn has_handler(&self) -> bool {
        self.handler_overrun_rate > 0.0 || self.stale_mhar_rate > 0.0
    }

    /// Whether the plan can inject anything at all.
    #[must_use]
    pub fn is_none(&self) -> bool {
        !self.has_interconnect() && !self.has_ecc() && !self.has_handler()
    }

    /// Dumps the plan's knobs into a shared metrics registry under the
    /// `faults.` prefix, so every observed run's export records exactly what
    /// fault pressure it ran under. Rates (probabilities) are recorded in
    /// parts per million to keep the registry integer-valued.
    pub fn record_metrics(&self, m: &mut imo_obs::MetricsRegistry) {
        let ppm = |rate: f64| (rate * 1e6).round() as u64;
        m.set("faults.seed", self.seed);
        m.set("faults.drop_rate_ppm", ppm(self.drop_rate));
        m.set("faults.dup_rate_ppm", ppm(self.dup_rate));
        m.set("faults.delay_rate_ppm", ppm(self.delay_rate));
        m.set("faults.delay_cycles", self.delay_cycles);
        m.set("faults.ecc_single_rate_ppm", ppm(self.ecc_single_rate));
        m.set("faults.ecc_double_rate_ppm", ppm(self.ecc_double_rate));
        m.set("faults.handler_overrun_rate_ppm", ppm(self.handler_overrun_rate));
        m.set("faults.stale_mhar_rate_ppm", ppm(self.stale_mhar_rate));
        m.set("faults.degrade_after", u64::from(self.degrade_after));
    }
}

impl Default for FaultConfig {
    fn default() -> FaultConfig {
        FaultConfig::none(0)
    }
}

// Site tags: arbitrary distinct constants mixed into the plan seed so each
// site gets an independent stream. Fixed for all time — changing them
// invalidates recorded fault schedules.
const SITE_INTERCONNECT: u64 = 0x1996_0001;
const SITE_CACHE_LINE: u64 = 0x1996_0002;
const SITE_HANDLER: u64 = 0x1996_0003;

/// A deterministic fault schedule: a factory for the per-site streams.
///
/// The plan itself is immutable; each call to [`FaultPlan::interconnect`],
/// [`FaultPlan::cache_lines`] or [`FaultPlan::handlers`] returns a fresh
/// stream positioned at draw 0, so a simulation that owns its streams
/// replays the same schedule every run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    cfg: FaultConfig,
}

impl FaultPlan {
    /// A plan over the given configuration.
    #[must_use]
    pub fn new(cfg: FaultConfig) -> FaultPlan {
        FaultPlan { cfg }
    }

    /// The plan that injects nothing.
    #[must_use]
    pub fn none() -> FaultPlan {
        FaultPlan { cfg: FaultConfig::none(0) }
    }

    /// The configuration this plan was built from.
    #[must_use]
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// The interconnect fault stream (one draw per protocol message).
    #[must_use]
    pub fn interconnect(&self) -> InterconnectFaults {
        InterconnectFaults { cfg: self.cfg, seed: mix64(self.cfg.seed, SITE_INTERCONNECT), n: 0 }
    }

    /// The cache-line ECC fault stream (one draw per invalidation).
    #[must_use]
    pub fn cache_lines(&self) -> EccFaults {
        EccFaults { cfg: self.cfg, seed: mix64(self.cfg.seed, SITE_CACHE_LINE), n: 0 }
    }

    /// The handler fault stream (one draw per informing trap).
    #[must_use]
    pub fn handlers(&self) -> HandlerFaults {
        HandlerFaults { cfg: self.cfg, seed: mix64(self.cfg.seed, SITE_HANDLER), n: 0 }
    }
}

/// One uniform sample in `[0, 1)` from a per-draw split RNG. Splitting per
/// draw (rather than advancing one generator) makes draw `n` a pure function
/// of `(stream seed, n)`.
pub(crate) fn draw(seed: u64, n: u64) -> (f64, SmallRng) {
    let mut rng = SmallRng::seed_from_u64(mix64(seed, n));
    let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    (u, rng)
}

/// Reproducible interconnect fault schedule; see [`FaultPlan::interconnect`].
#[derive(Debug, Clone)]
pub struct InterconnectFaults {
    cfg: FaultConfig,
    seed: u64,
    n: u64,
}

impl InterconnectFaults {
    /// Number of draws consumed so far. Because draw `n` is a pure function
    /// of `(stream seed, n)`, this single counter is the stream's entire
    /// mutable state — a checkpoint records it and
    /// [`InterconnectFaults::seek`] restores it.
    #[must_use]
    pub fn position(&self) -> u64 {
        self.n
    }

    /// Fast-forwards (or rewinds) the stream so the next draw is draw `n`,
    /// as returned by [`InterconnectFaults::position`] on the stream being
    /// restored.
    pub fn seek(&mut self, n: u64) {
        self.n = n;
    }

    /// The fault (if any) injected on the next protocol message.
    pub fn draw(&mut self) -> Option<InterconnectFault> {
        if !self.cfg.has_interconnect() {
            return None;
        }
        let (u, mut rng) = draw(self.seed, self.n);
        self.n += 1;
        if u < self.cfg.drop_rate {
            Some(InterconnectFault::Drop)
        } else if u < self.cfg.drop_rate + self.cfg.dup_rate {
            Some(InterconnectFault::Duplicate)
        } else if u < self.cfg.drop_rate + self.cfg.dup_rate + self.cfg.delay_rate {
            let d = rng.gen_range(1..self.cfg.delay_cycles.max(1) + 1);
            Some(InterconnectFault::Delay(d))
        } else {
            None
        }
    }
}

/// Reproducible cache-line ECC schedule; see [`FaultPlan::cache_lines`].
#[derive(Debug, Clone)]
pub struct EccFaults {
    cfg: FaultConfig,
    seed: u64,
    n: u64,
}

impl EccFaults {
    /// Number of draws consumed so far. Because draw `n` is a pure function
    /// of `(stream seed, n)`, this single counter is the stream's entire
    /// mutable state — a checkpoint records it and [`EccFaults::seek`]
    /// restores it.
    #[must_use]
    pub fn position(&self) -> u64 {
        self.n
    }

    /// Fast-forwards (or rewinds) the stream so the next draw is draw `n`,
    /// as returned by [`EccFaults::position`] on the stream being restored.
    pub fn seek(&mut self, n: u64) {
        self.n = n;
    }

    /// The ECC event (if any) injected on the next line invalidation.
    pub fn draw(&mut self) -> Option<EccFault> {
        if !self.cfg.has_ecc() {
            return None;
        }
        let (u, _) = draw(self.seed, self.n);
        self.n += 1;
        if u < self.cfg.ecc_single_rate {
            Some(EccFault::SingleBit)
        } else if u < self.cfg.ecc_single_rate + self.cfg.ecc_double_rate {
            Some(EccFault::DoubleBit)
        } else {
            None
        }
    }
}

/// Reproducible handler fault schedule; see [`FaultPlan::handlers`].
#[derive(Debug, Clone)]
pub struct HandlerFaults {
    cfg: FaultConfig,
    seed: u64,
    n: u64,
}

impl HandlerFaults {
    /// Number of draws consumed so far. Because draw `n` is a pure function
    /// of `(stream seed, n)`, this single counter is the stream's entire
    /// mutable state — a checkpoint records it and [`HandlerFaults::seek`]
    /// restores it.
    #[must_use]
    pub fn position(&self) -> u64 {
        self.n
    }

    /// Fast-forwards (or rewinds) the stream so the next draw is draw `n`,
    /// as returned by [`HandlerFaults::position`] on the stream being
    /// restored.
    pub fn seek(&mut self, n: u64) {
        self.n = n;
    }

    /// The fault (if any) injected on the next informing trap.
    pub fn draw(&mut self) -> Option<HandlerFault> {
        if !self.cfg.has_handler() {
            return None;
        }
        let (u, _) = draw(self.seed, self.n);
        self.n += 1;
        if u < self.cfg.handler_overrun_rate {
            Some(HandlerFault::Overrun { extra_cycles: self.cfg.handler_overrun_cycles })
        } else if u < self.cfg.handler_overrun_rate + self.cfg.stale_mhar_rate {
            Some(HandlerFault::StaleMhar { reload_cycles: self.cfg.stale_mhar_cycles })
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn faulty() -> FaultConfig {
        let mut c = FaultConfig::none(7);
        c.drop_rate = 0.2;
        c.dup_rate = 0.1;
        c.delay_rate = 0.1;
        c.ecc_single_rate = 0.2;
        c.ecc_double_rate = 0.1;
        c.handler_overrun_rate = 0.2;
        c.stale_mhar_rate = 0.1;
        c
    }

    #[test]
    fn handler_stream_seek_replays_exactly() {
        let plan = FaultPlan::new(faulty());
        let mut a = plan.handlers();
        let prefix: Vec<_> = (0..10).map(|_| a.draw()).collect();
        assert!(prefix.iter().any(|f| f.is_some()), "rates high enough to fire");
        // A fresh stream seeked to the recorded position continues the
        // original sequence, and rewinding replays the prefix.
        let mut b = plan.handlers();
        b.seek(a.position());
        let cont_a: Vec<_> = (0..10).map(|_| a.draw()).collect();
        let cont_b: Vec<_> = (0..10).map(|_| b.draw()).collect();
        assert_eq!(cont_a, cont_b);
        b.seek(0);
        let replay: Vec<_> = (0..10).map(|_| b.draw()).collect();
        assert_eq!(replay, prefix);
    }

    #[test]
    fn same_seed_same_schedule() {
        let plan = FaultPlan::new(faulty());
        let a: Vec<_> = {
            let mut s = plan.interconnect();
            (0..256).map(|_| s.draw()).collect()
        };
        let b: Vec<_> = {
            let mut s = plan.interconnect();
            (0..256).map(|_| s.draw()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let mut c2 = faulty();
        c2.seed = 8;
        let a: Vec<_> = {
            let mut s = FaultPlan::new(faulty()).interconnect();
            (0..256).map(|_| s.draw()).collect()
        };
        let b: Vec<_> = {
            let mut s = FaultPlan::new(c2).interconnect();
            (0..256).map(|_| s.draw()).collect()
        };
        assert_ne!(a, b);
    }

    #[test]
    fn sites_are_independent_streams() {
        // Consuming the interconnect stream must not shift the ECC stream.
        let plan = FaultPlan::new(faulty());
        let ecc_cold: Vec<_> = {
            let mut s = plan.cache_lines();
            (0..64).map(|_| s.draw()).collect()
        };
        let ecc_after: Vec<_> = {
            let mut net = plan.interconnect();
            for _ in 0..1000 {
                net.draw();
            }
            let mut s = plan.cache_lines();
            (0..64).map(|_| s.draw()).collect()
        };
        assert_eq!(ecc_cold, ecc_after);
    }

    #[test]
    fn zero_rates_never_inject() {
        let plan = FaultPlan::none();
        let mut net = plan.interconnect();
        let mut ecc = plan.cache_lines();
        let mut hdl = plan.handlers();
        for _ in 0..1000 {
            assert_eq!(net.draw(), None);
            assert_eq!(ecc.draw(), None);
            assert_eq!(hdl.draw(), None);
        }
    }

    #[test]
    fn rates_are_roughly_honoured() {
        let mut c = FaultConfig::none(3);
        c.drop_rate = 0.25;
        let mut s = FaultPlan::new(c).interconnect();
        let drops = (0..8000).filter(|_| s.draw() == Some(InterconnectFault::Drop)).count();
        assert!((1700..2300).contains(&drops), "drops {drops} out of expectation for p=0.25");
    }

    #[test]
    fn kinds_partition_one_draw() {
        // drop + dup + delay = 1.0 => every message faults, kinds disjoint.
        let mut c = FaultConfig::none(11);
        c.drop_rate = 0.4;
        c.dup_rate = 0.3;
        c.delay_rate = 0.3;
        c.delay_cycles = 10;
        let mut s = FaultPlan::new(c).interconnect();
        let mut seen = [0u32; 3];
        for _ in 0..2000 {
            match s.draw() {
                Some(InterconnectFault::Drop) => seen[0] += 1,
                Some(InterconnectFault::Duplicate) => seen[1] += 1,
                Some(InterconnectFault::Delay(d)) => {
                    assert!((1..=10).contains(&d), "delay {d}");
                    seen[2] += 1;
                }
                None => panic!("rates sum to 1.0; every draw must fault"),
            }
        }
        assert!(seen.iter().all(|&k| k > 300), "all kinds appear: {seen:?}");
    }

    #[test]
    fn handler_faults_carry_configured_penalties() {
        let mut c = FaultConfig::none(5);
        c.handler_overrun_rate = 0.5;
        c.stale_mhar_rate = 0.5;
        c.handler_overrun_cycles = 123;
        c.stale_mhar_cycles = 45;
        let mut s = FaultPlan::new(c).handlers();
        let mut both = [false; 2];
        for _ in 0..256 {
            match s.draw() {
                Some(HandlerFault::Overrun { extra_cycles }) => {
                    assert_eq!(extra_cycles, 123);
                    both[0] = true;
                }
                Some(HandlerFault::StaleMhar { reload_cycles }) => {
                    assert_eq!(reload_cycles, 45);
                    both[1] = true;
                }
                None => panic!("rates sum to 1.0"),
            }
        }
        assert!(both.iter().all(|&b| b));
        assert_eq!(
            HandlerFault::Overrun { extra_cycles: 9 }.penalty_cycles(),
            9,
            "penalty accessor"
        );
    }

    #[test]
    fn record_metrics_exports_rates_in_ppm() {
        let mut m = imo_obs::MetricsRegistry::new();
        let mut c = FaultConfig::none(9);
        c.drop_rate = 0.25;
        c.record_metrics(&mut m);
        assert_eq!(m.counter("faults.seed"), Some(9));
        assert_eq!(m.counter("faults.drop_rate_ppm"), Some(250_000));
        assert_eq!(m.counter("faults.degrade_after"), Some(4));
    }

    #[test]
    fn uniform_config_covers_all_sites() {
        let c = FaultConfig::uniform(1, 0.3);
        assert!(c.has_interconnect() && c.has_ecc() && c.has_handler());
        assert!(!c.is_none());
        assert!(FaultConfig::none(1).is_none());
    }
}
