//! # IRIS: an informing-memory RISC instruction set
//!
//! This crate defines the instruction set used by the cycle-level processor
//! models in this workspace, together with an assembler DSL and a functional
//! (architectural) executor.
//!
//! The ISA is a conventional MIPS-like 64-bit RISC (32 integer + 32
//! floating-point registers) extended with the *informing memory operation*
//! primitives proposed by Horowitz, Martonosi, Mowry and Smith in
//! "Informing Memory Operations" (ISCA 1996):
//!
//! * **Cache-outcome condition code** — every data memory operation records
//!   its primary-cache hit/miss outcome in user-visible state; the explicit
//!   [`Instr::BranchOnMiss`] instruction conditionally branch-and-links on
//!   that state.
//! * **Low-overhead cache-miss trap** — memory operations marked
//!   [`MemKind::Informing`] implicitly trap to the address held in the *Miss
//!   Handler Address Register* (MHAR) when they miss in the primary data
//!   cache, depositing the return address in the *Miss Handler Return
//!   Register* (MHRR). [`Instr::SetMhar`] loads the MHAR (zero disables
//!   trapping) and [`Instr::JumpMhrr`] returns from a handler.
//! * As a documented extension beyond the paper, the *Miss Address Register*
//!   (MAR) captures the data address of the most recent primary-cache miss so
//!   that handlers can compute prefetch targets ([`Instr::ReadMar`]).
//!
//! The functional executor in [`exec`] runs programs architecturally. Cache
//! hit/miss outcomes are supplied by a [`exec::MissOracle`] so that the same
//! semantics are shared between standalone functional runs (where an oracle
//! may model a simple cache) and the cycle-level simulators in `imo-cpu`
//! (where the timing model's cache hierarchy is the oracle).
//!
//! ## Example
//!
//! ```
//! use imo_isa::{Asm, Reg, exec::{Executor, NeverMiss}};
//!
//! let mut a = Asm::new();
//! let r1 = Reg::int(1);
//! let r2 = Reg::int(2);
//! a.li(r1, 5);
//! a.li(r2, 37);
//! a.add(r1, r1, r2);
//! a.halt();
//! let program = a.assemble().expect("assembles");
//!
//! let mut exec = Executor::new(&program);
//! exec.run(&mut NeverMiss, 1_000).expect("runs to halt");
//! assert_eq!(exec.state().int(r1), 42);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod asm;
pub mod block;
pub mod exec;
pub mod instr;
pub mod memimg;
pub mod program;
pub mod reg;

pub use asm::{Asm, AsmError, Label};
pub use block::{Block, BlockCache, InstrMeta, NO_REG};
pub use instr::{Cond, FuClass, Instr, MemKind};
pub use memimg::DataMemory;
pub use program::{Program, TEXT_BASE};
pub use reg::{Reg, RegClass};
