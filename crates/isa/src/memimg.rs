//! Sparse 64-bit-word data memory.

use imo_util::hash::WordMap;
use imo_util::json::Json;
use imo_util::snapshot::{self, Snapshot, SnapshotError};

/// Size of one allocation page, in bytes.
const PAGE_BYTES: u64 = 4096;
/// Words per page.
const PAGE_WORDS: usize = (PAGE_BYTES / 8) as usize;

/// A sparse, paged data memory of 64-bit words.
///
/// Addresses are byte addresses; accesses are performed on the aligned 8-byte
/// word containing the address (the ISA only defines word accesses, so the
/// low three address bits are ignored). Unwritten memory reads as zero.
///
/// # Example
///
/// ```
/// use imo_isa::DataMemory;
///
/// let mut m = DataMemory::new();
/// m.write(0x1000, 42);
/// assert_eq!(m.read(0x1000), 42);
/// assert_eq!(m.read(0x1003), 42); // same aligned word
/// assert_eq!(m.read(0x2000), 0); // untouched memory is zero
/// ```
#[derive(Debug, Clone, Default)]
pub struct DataMemory {
    pages: WordMap<u64, Box<[u64; PAGE_WORDS]>>,
}

impl DataMemory {
    /// Creates an empty memory (all zeros).
    pub fn new() -> DataMemory {
        DataMemory::default()
    }

    /// Reads the aligned 64-bit word containing byte address `addr`.
    pub fn read(&self, addr: u64) -> u64 {
        let (page, word) = Self::split(addr);
        match self.pages.get(&page) {
            Some(p) => p[word],
            None => 0,
        }
    }

    /// Writes the aligned 64-bit word containing byte address `addr`.
    pub fn write(&mut self, addr: u64, value: u64) {
        let (page, word) = Self::split(addr);
        let p = self.pages.entry(page).or_insert_with(|| Box::new([0u64; PAGE_WORDS]));
        p[word] = value;
    }

    /// Reads the word at `addr` reinterpreted as an IEEE-754 double.
    pub fn read_f64(&self, addr: u64) -> f64 {
        f64::from_bits(self.read(addr))
    }

    /// Writes an IEEE-754 double's bit pattern to the word at `addr`.
    pub fn write_f64(&mut self, addr: u64, value: f64) {
        self.write(addr, value.to_bits());
    }

    /// Number of distinct pages that have been touched by writes.
    pub fn touched_pages(&self) -> usize {
        self.pages.len()
    }

    fn split(addr: u64) -> (u64, usize) {
        let page = addr / PAGE_BYTES;
        let word = ((addr % PAGE_BYTES) / 8) as usize;
        (page, word)
    }
}

impl Snapshot for DataMemory {
    const KIND: &'static str = "isa.data_memory";
    const VERSION: u32 = 1;

    /// Pages are emitted in sorted page-index order so the same memory
    /// contents always serialize byte-identically.
    fn encode(&self) -> Json {
        let mut indices: Vec<u64> = self.pages.keys().copied().collect();
        indices.sort_unstable();
        let pages = indices.into_iter().map(|at| {
            let words = self.pages.get(&at).expect("page index came from the map");
            Json::obj([("at", snapshot::u64_json(at)), ("words", snapshot::u64s_json(&words[..]))])
        });
        Json::obj([("pages", Json::arr(pages))])
    }

    fn decode(data: &Json) -> Result<Self, SnapshotError> {
        let mut mem = DataMemory::new();
        for p in snapshot::field(data, "pages")?.as_arr().ok_or(SnapshotError::Bad("pages"))? {
            let at = snapshot::get_u64(p, "at")?;
            let words = snapshot::get_u64s(p, "words")?;
            let arr: Box<[u64; PAGE_WORDS]> =
                words.into_boxed_slice().try_into().map_err(|_| SnapshotError::Bad("words"))?;
            mem.pages.insert(at, arr);
        }
        Ok(mem)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_by_default() {
        let m = DataMemory::new();
        assert_eq!(m.read(0), 0);
        assert_eq!(m.read(u64::MAX - 8), 0);
    }

    #[test]
    fn read_back_write() {
        let mut m = DataMemory::new();
        m.write(8, 0xdead_beef);
        assert_eq!(m.read(8), 0xdead_beef);
        assert_eq!(m.read(0), 0);
        assert_eq!(m.read(16), 0);
    }

    #[test]
    fn unaligned_access_uses_containing_word() {
        let mut m = DataMemory::new();
        m.write(0x105, 7);
        assert_eq!(m.read(0x100), 7);
        assert_eq!(m.read(0x107), 7);
        assert_eq!(m.read(0x108), 0);
    }

    #[test]
    fn f64_round_trip() {
        let mut m = DataMemory::new();
        m.write_f64(64, 3.5);
        assert_eq!(m.read_f64(64), 3.5);
    }

    #[test]
    fn page_boundary() {
        let mut m = DataMemory::new();
        m.write(4088, 1);
        m.write(4096, 2);
        assert_eq!(m.read(4088), 1);
        assert_eq!(m.read(4096), 2);
        assert_eq!(m.touched_pages(), 2);
    }

    #[test]
    fn snapshot_round_trip_is_exact() {
        let mut m = DataMemory::new();
        m.write(0, 1);
        m.write(4096, u64::MAX);
        m.write(1 << 40, 3);
        m.write_f64(8, -0.0);
        let wire = m.to_wire().pretty();
        let back = DataMemory::from_wire(&imo_util::json::parse(&wire).unwrap()).expect("decodes");
        assert_eq!(back.read(0), 1);
        assert_eq!(back.read(4096), u64::MAX);
        assert_eq!(back.read(1 << 40), 3);
        assert_eq!(back.read_f64(8).to_bits(), (-0.0f64).to_bits());
        assert_eq!(back.touched_pages(), m.touched_pages());
        assert_eq!(back.to_wire(), m.to_wire(), "re-encoding is byte-stable");
    }

    #[test]
    fn distant_addresses() {
        let mut m = DataMemory::new();
        m.write(0, 1);
        m.write(1 << 40, 2);
        assert_eq!(m.read(0), 1);
        assert_eq!(m.read(1 << 40), 2);
    }
}
