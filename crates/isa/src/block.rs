//! Pre-decoded basic blocks over a program's text segment.
//!
//! [`BlockCache::build`] partitions the text segment once, at program load,
//! into straight-line blocks ended by control transfers, trap-capable
//! informing memory operations, and `halt`. Alongside the block table it
//! pre-decodes one [`InstrMeta`] per instruction — flat register slots,
//! functional-unit class, latency, and a flag byte — so the timing cores'
//! hot issue loops can drive scheduling from dense table lookups instead of
//! re-matching the `Instr` enum every cycle.
//!
//! The cache is a pure acceleration structure: it carries no architectural
//! state, is never snapshotted, and everything in it is derivable from the
//! `Program` it was built from.

use crate::instr::{FuClass, Instr};
use crate::program::{Program, TEXT_BASE};

/// Sentinel register slot meaning "no register" (`r0` destinations are also
/// folded here, matching [`Instr::dest`]).
pub const NO_REG: u8 = 0xFF;

/// Blocks are capped at this many instructions so per-block bitmasks fit in
/// one `u64` word.
pub const MAX_BLOCK_LEN: usize = 64;

/// Pre-decoded per-instruction metadata (8 bytes).
///
/// Register fields are flat [`crate::Reg::logical`] slots (0–31 integer,
/// 32–63 FP) with [`NO_REG`] for "none"; sources appear in
/// [`Instr::sources`] order (for stores: base, then the stored value).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InstrMeta {
    /// First source register slot, or [`NO_REG`].
    pub src1: u8,
    /// Second source register slot, or [`NO_REG`].
    pub src2: u8,
    /// Destination register slot, or [`NO_REG`].
    pub dest: u8,
    /// Functional-unit class: 0 = Int, 1 = Fp, 2 = Branch, 3 = Mem.
    pub fu: u8,
    /// Memory/exit shape: one of the `KIND_*` constants.
    pub kind: u8,
    /// Flag bits (`ENDS_BLOCK`, `MEM`, …).
    pub flags: u8,
    /// Execution latency in cycles on the machine the cache was built for
    /// (the largest Table-1 latency, integer divide, is 76, so `u8` fits).
    pub lat: u8,
}

impl InstrMeta {
    /// The instruction terminates a straight-line block (control transfer,
    /// trap-capable informing memory operation, or halt).
    pub const ENDS_BLOCK: u8 = 1 << 0;
    /// Load, store or prefetch (occupies the memory pipe).
    pub const MEM: u8 = 1 << 1;
    /// Load or store (sets the cache-outcome condition code).
    pub const DATA_REF: u8 = 1 << 2;
    /// Informing load or store (may trap on a primary miss).
    pub const INFORMING: u8 = 1 << 3;
    /// A conditional [`Instr::Branch`] (the predictor sees it).
    pub const COND_BRANCH: u8 = 1 << 4;
    /// [`Instr::BranchOnMiss`] — issue must additionally wait for the
    /// previous memory operation's outcome cycle.
    pub const BMISS: u8 = 1 << 5;
    /// [`Instr::Halt`].
    pub const HALT: u8 = 1 << 6;

    /// `kind` value for non-memory instructions.
    pub const KIND_OTHER: u8 = 0;
    /// `kind` value for loads.
    pub const KIND_LOAD: u8 = 1;
    /// `kind` value for stores.
    pub const KIND_STORE: u8 = 2;
    /// `kind` value for prefetches.
    pub const KIND_PREFETCH: u8 = 3;
    /// `kind` value for halt.
    pub const KIND_HALT: u8 = 4;

    fn of(instr: &Instr, lat: u8) -> InstrMeta {
        let mut srcs = instr.sources();
        let src1 = srcs.next().map_or(NO_REG, |r| r.logical() as u8);
        let src2 = srcs.next().map_or(NO_REG, |r| r.logical() as u8);
        let dest = instr.dest().map_or(NO_REG, |r| r.logical() as u8);
        let fu = match instr.fu_class() {
            FuClass::Int => 0,
            FuClass::Fp => 1,
            FuClass::Branch => 2,
            FuClass::Mem => 3,
        };
        let kind = match instr {
            Instr::Load { .. } => InstrMeta::KIND_LOAD,
            Instr::Store { .. } => InstrMeta::KIND_STORE,
            Instr::Prefetch { .. } => InstrMeta::KIND_PREFETCH,
            Instr::Halt => InstrMeta::KIND_HALT,
            _ => InstrMeta::KIND_OTHER,
        };
        let mut flags = 0;
        if instr.is_control() || instr.is_informing() || matches!(instr, Instr::Halt) {
            flags |= InstrMeta::ENDS_BLOCK;
        }
        if instr.is_mem() {
            flags |= InstrMeta::MEM;
        }
        if instr.is_data_ref() {
            flags |= InstrMeta::DATA_REF;
        }
        if instr.is_informing() {
            flags |= InstrMeta::INFORMING;
        }
        if matches!(instr, Instr::Branch { .. }) {
            flags |= InstrMeta::COND_BRANCH;
        }
        if matches!(instr, Instr::BranchOnMiss { .. }) {
            flags |= InstrMeta::BMISS;
        }
        if matches!(instr, Instr::Halt) {
            flags |= InstrMeta::HALT;
        }
        InstrMeta { src1, src2, dest, fu, kind, flags, lat }
    }

    /// Whether the instruction is "plain": no memory access, no control
    /// transfer, no trap — the shape the batch fetch path streams through
    /// [`crate::exec::Executor::step_block`] without consulting an oracle.
    #[inline]
    pub fn is_plain(&self) -> bool {
        self.flags & (InstrMeta::MEM | InstrMeta::ENDS_BLOCK) == 0
    }
}

/// One straight-line block: a run of instructions with no control entry or
/// exit except at its boundaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Block {
    /// Index of the first instruction (units of one instruction).
    pub start: u32,
    /// Number of instructions (1..=[`MAX_BLOCK_LEN`]).
    pub len: u32,
    /// Bitmask over flat register slots read anywhere in the block.
    pub reads: u64,
    /// Bitmask over flat register slots written anywhere in the block.
    pub writes: u64,
    /// Bit *i* set ⇔ the block's *i*-th instruction is a memory operation.
    pub mem_slots: u64,
    /// Number of memory operations in the block.
    pub mem_ops: u32,
}

impl Block {
    /// Text address of the block's first instruction.
    #[inline]
    pub fn addr(&self) -> u64 {
        Program::addr_of(self.start as usize)
    }

    /// Index one past the block's last instruction.
    #[inline]
    pub fn end(&self) -> u32 {
        self.start + self.len
    }
}

/// The pre-decoded block table for one program, built once at load.
#[derive(Debug, Clone, Default)]
pub struct BlockCache {
    meta: Vec<InstrMeta>,
    block_of: Vec<u32>,
    blocks: Vec<Block>,
    /// `plain_len[i]` = number of consecutive plain instructions starting at
    /// `i` (0 when instruction `i` is not plain itself). Lets the batch
    /// fetch path size a run with one lookup instead of an O(k) meta scan.
    plain_len: Vec<u32>,
    /// `dest_bit[i]` = `1 << meta[i].dest`, or 0 for no destination — the
    /// taint-mask update over a plain run reduces to an or-fold over this
    /// table.
    dest_bit: Vec<u64>,
}

impl BlockCache {
    /// Decodes `program` into per-instruction metadata and basic blocks.
    ///
    /// `latency` supplies the per-instruction execution latency (the timing
    /// cores pass their machine's Table-1 latency function, keeping that
    /// table single-sourced in the CPU configuration).
    pub fn build(program: &Program, latency: impl Fn(&Instr) -> u64) -> BlockCache {
        let instrs = program.instrs();
        let mut meta = Vec::with_capacity(instrs.len());
        for i in instrs {
            meta.push(InstrMeta::of(i, latency(i).min(u8::MAX as u64) as u8));
        }
        let mut blocks = Vec::new();
        let mut block_of = vec![0u32; instrs.len()];
        let mut start = 0usize;
        for idx in 0..instrs.len() {
            let len = idx + 1 - start;
            let closes = meta[idx].flags & InstrMeta::ENDS_BLOCK != 0
                || len == MAX_BLOCK_LEN
                || idx + 1 == instrs.len();
            if !closes {
                continue;
            }
            let (mut reads, mut writes, mut mem_slots, mut mem_ops) = (0u64, 0u64, 0u64, 0u32);
            for (j, m) in meta[start..=idx].iter().enumerate() {
                for s in [m.src1, m.src2] {
                    if s != NO_REG {
                        reads |= 1 << s;
                    }
                }
                if m.dest != NO_REG {
                    writes |= 1 << m.dest;
                }
                if m.flags & InstrMeta::MEM != 0 {
                    mem_slots |= 1 << j;
                    mem_ops += 1;
                }
            }
            let b = blocks.len() as u32;
            for slot in &mut block_of[start..=idx] {
                *slot = b;
            }
            blocks.push(Block {
                start: start as u32,
                len: len as u32,
                reads,
                writes,
                mem_slots,
                mem_ops,
            });
            start = idx + 1;
        }
        let mut plain_len = vec![0u32; meta.len()];
        for i in (0..meta.len()).rev() {
            if meta[i].is_plain() {
                plain_len[i] = 1 + plain_len.get(i + 1).copied().unwrap_or(0);
            }
        }
        let dest_bit =
            meta.iter().map(|m| if m.dest == NO_REG { 0 } else { 1u64 << m.dest }).collect();
        BlockCache { meta, block_of, blocks, plain_len, dest_bit }
    }

    /// Instruction index of `addr`, or `None` outside the text segment (same
    /// address arithmetic as [`Program::fetch`]).
    #[inline]
    pub fn index_of(&self, addr: u64) -> Option<usize> {
        let off = addr.wrapping_sub(TEXT_BASE);
        if off & 3 != 0 {
            return None;
        }
        let idx = (off >> 2) as usize;
        (idx < self.meta.len()).then_some(idx)
    }

    /// Pre-decoded metadata for the instruction at `addr`.
    #[inline]
    pub fn meta_at(&self, addr: u64) -> Option<&InstrMeta> {
        self.index_of(addr).map(|i| &self.meta[i])
    }

    /// Pre-decoded metadata by instruction index.
    #[inline]
    pub fn meta_idx(&self, idx: usize) -> &InstrMeta {
        &self.meta[idx]
    }

    /// All per-instruction metadata in text order.
    #[inline]
    pub fn meta(&self) -> &[InstrMeta] {
        &self.meta
    }

    /// Length of the plain run starting at instruction index `idx` (0 when
    /// that instruction is not plain).
    #[inline]
    pub fn plain_run_len(&self, idx: usize) -> u32 {
        self.plain_len[idx]
    }

    /// Destination-register bits (`1 << dest`, or 0 for none) for the
    /// instructions `idx..idx + k` in text order.
    #[inline]
    pub fn dest_bits(&self, idx: usize, k: usize) -> &[u64] {
        &self.dest_bit[idx..idx + k]
    }

    /// Index of the block containing instruction index `idx`.
    #[inline]
    pub fn block_index(&self, idx: usize) -> u32 {
        self.block_of[idx]
    }

    /// The block containing the instruction at `addr`.
    #[inline]
    pub fn block_at(&self, addr: u64) -> Option<&Block> {
        self.index_of(addr).map(|i| &self.blocks[self.block_of[i] as usize])
    }

    /// All blocks in text order.
    #[inline]
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Number of decoded instructions.
    #[inline]
    pub fn len(&self) -> usize {
        self.meta.len()
    }

    /// Whether the program had no instructions.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.meta.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;
    use crate::instr::Cond;
    use crate::reg::Reg;

    fn r(i: u8) -> Reg {
        Reg::int(i)
    }

    fn flat_lat(_: &Instr) -> u64 {
        1
    }

    #[test]
    fn blocks_end_at_control_informing_and_halt() {
        let mut a = Asm::new();
        a.li(r(1), 1); // block 0: li, add, branch
        a.add(r(2), r(1), r(1));
        let top = a.here("top");
        a.branch(Cond::Eq, r(1), r(2), top);
        a.li(r(3), 3); // block 1: li, ld.inf (informing ends it)
        a.load_inf(r(4), r(3), 0);
        a.load(r(5), r(3), 8); // block 2: plain load, halt
        a.halt();
        let p = a.assemble().unwrap();
        let c = BlockCache::build(&p, flat_lat);
        assert_eq!(c.len(), p.len());
        let lens: Vec<u32> = c.blocks().iter().map(|b| b.len).collect();
        assert_eq!(lens, [3, 2, 2]);
        // Normal loads do not end blocks; informing ones do.
        let ld_inf = c.meta_idx(4);
        assert_ne!(ld_inf.flags & InstrMeta::ENDS_BLOCK, 0);
        assert_ne!(ld_inf.flags & InstrMeta::INFORMING, 0);
        let ld = c.meta_idx(5);
        assert_eq!(ld.flags & InstrMeta::ENDS_BLOCK, 0);
        assert_eq!(ld.kind, InstrMeta::KIND_LOAD);
    }

    #[test]
    fn meta_matches_instr_accessors() {
        let mut a = Asm::new();
        a.store(r(5), r(6), 8);
        a.add(Reg::ZERO, r(1), r(2)); // dest r0 → NO_REG
        a.fadd(Reg::fp(1), Reg::fp(2), Reg::fp(3));
        a.halt();
        let p = a.assemble().unwrap();
        let c = BlockCache::build(&p, |i| match i.fu_class() {
            FuClass::Fp => 4,
            _ => 1,
        });
        let st = c.meta_idx(0);
        assert_eq!((st.src1, st.src2), (6, 5), "store sources are (base, rs)");
        assert_eq!(st.dest, NO_REG);
        assert_eq!(st.kind, InstrMeta::KIND_STORE);
        assert_ne!(st.flags & InstrMeta::DATA_REF, 0);
        let add = c.meta_idx(1);
        assert_eq!(add.dest, NO_REG);
        assert!(add.is_plain());
        let fadd = c.meta_idx(2);
        assert_eq!(fadd.fu, 1);
        assert_eq!(fadd.lat, 4);
        assert_eq!(fadd.dest, 32 + 1, "fp slots start at 32");
        let halt = c.meta_idx(3);
        assert_ne!(halt.flags & InstrMeta::HALT, 0);
        assert_eq!(halt.kind, InstrMeta::KIND_HALT);
    }

    #[test]
    fn block_masks_cover_members() {
        let mut a = Asm::new();
        a.li(r(1), 7);
        a.add(r(2), r(1), r(1));
        a.load(r(3), r(2), 0);
        a.halt();
        let p = a.assemble().unwrap();
        let c = BlockCache::build(&p, flat_lat);
        assert_eq!(c.blocks().len(), 1);
        let b = c.blocks()[0];
        assert_eq!(b.len, 4);
        assert_eq!(b.reads, (1 << 1) | (1 << 2));
        assert_eq!(b.writes, (1 << 1) | (1 << 2) | (1 << 3));
        assert_eq!(b.mem_slots, 1 << 2);
        assert_eq!(b.mem_ops, 1);
        assert_eq!(b.addr(), TEXT_BASE);
    }

    #[test]
    fn lookup_mirrors_program_fetch() {
        let mut a = Asm::new();
        a.nop();
        a.halt();
        let p = a.assemble().unwrap();
        let c = BlockCache::build(&p, flat_lat);
        assert!(c.meta_at(TEXT_BASE).is_some());
        assert!(c.meta_at(TEXT_BASE + 4).is_some());
        assert!(c.meta_at(TEXT_BASE + 8).is_none(), "past end");
        assert!(c.meta_at(TEXT_BASE + 2).is_none(), "unaligned");
        assert!(c.meta_at(0).is_none(), "below base");
        assert!(c.block_at(TEXT_BASE).is_some());
    }

    #[test]
    fn long_straight_runs_split_at_the_mask_cap() {
        let mut a = Asm::new();
        for _ in 0..(MAX_BLOCK_LEN + 10) {
            a.nop();
        }
        a.halt();
        let p = a.assemble().unwrap();
        let c = BlockCache::build(&p, flat_lat);
        let lens: Vec<u32> = c.blocks().iter().map(|b| b.len).collect();
        assert_eq!(lens, [MAX_BLOCK_LEN as u32, 11]);
        assert_eq!(c.block_index(0), 0);
        assert_eq!(c.block_index(MAX_BLOCK_LEN), 1);
    }
}
