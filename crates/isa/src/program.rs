//! Assembled programs.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

use crate::instr::Instr;

/// Base address of the text segment. Instruction addresses advance by 4.
pub const TEXT_BASE: u64 = 0x1_0000;

/// An assembled program: instructions, resolved labels, initial data image
/// and the entry point.
///
/// The label table is a `BTreeMap` so the derived `Debug` rendering is
/// deterministic across processes — checkpoints bind to a session via a
/// `Debug`-based configuration hash, and a resume in a freshly spawned
/// worker must compute the same hash as the process that wrote the
/// checkpoint.
///
/// Produced by [`crate::Asm::assemble`]. A `Program` is immutable; the
/// functional executor and the processor models read instructions by address
/// via [`Program::fetch`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Program {
    instrs: Vec<Instr>,
    labels: BTreeMap<String, u64>,
    data: Vec<(u64, u64)>,
    entry: u64,
}

impl Program {
    pub(crate) fn new(
        instrs: Vec<Instr>,
        labels: BTreeMap<String, u64>,
        data: Vec<(u64, u64)>,
        entry: u64,
    ) -> Program {
        Program { instrs, labels, data, entry }
    }

    /// The instruction at address `addr`, or `None` if `addr` is outside the
    /// text segment or unaligned.
    ///
    /// Hot path: an address below `TEXT_BASE` wraps to a huge offset that
    /// either fails the alignment mask or the bounds check, so a single
    /// shift + slice-bounds test covers all three rejection cases.
    #[inline]
    pub fn fetch(&self, addr: u64) -> Option<Instr> {
        let off = addr.wrapping_sub(TEXT_BASE);
        if off & 3 != 0 {
            return None;
        }
        self.instrs.get((off >> 2) as usize).copied()
    }

    /// The address of instruction index `idx`.
    pub fn addr_of(idx: usize) -> u64 {
        TEXT_BASE + (idx as u64) * 4
    }

    /// Number of instructions in the text segment.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the text segment is empty.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// All instructions in text order.
    #[inline]
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// The entry-point address.
    pub fn entry(&self) -> u64 {
        self.entry
    }

    /// The resolved address of `label`, if defined.
    pub fn label(&self, label: &str) -> Option<u64> {
        self.labels.get(label).copied()
    }

    /// Initial data image as `(byte address, word value)` pairs.
    pub fn data(&self) -> &[(u64, u64)] {
        &self.data
    }

    /// Iterates over `(address, instruction)` pairs in text order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, Instr)> + '_ {
        self.instrs.iter().enumerate().map(|(i, &ins)| (Program::addr_of(i), ins))
    }

    /// A listing of the program, one instruction per line, with labels.
    pub fn listing(&self) -> String {
        let mut by_addr: HashMap<u64, Vec<&str>> = HashMap::new();
        for (name, &addr) in &self.labels {
            by_addr.entry(addr).or_default().push(name);
        }
        let mut out = String::new();
        for (addr, ins) in self.iter() {
            if let Some(names) = by_addr.get(&addr) {
                for n in names {
                    out.push_str(&format!("{n}:\n"));
                }
            }
            out.push_str(&format!("  {addr:#08x}  {ins}\n"));
        }
        out
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.listing())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;
    use crate::reg::Reg;

    #[test]
    fn fetch_by_address() {
        let mut a = Asm::new();
        a.nop();
        a.li(Reg::int(1), 9);
        a.halt();
        let p = a.assemble().unwrap();
        assert_eq!(p.len(), 3);
        assert_eq!(p.fetch(TEXT_BASE), Some(Instr::Nop));
        assert_eq!(p.fetch(TEXT_BASE + 8), Some(Instr::Halt));
        assert_eq!(p.fetch(TEXT_BASE + 12), None);
        assert_eq!(p.fetch(TEXT_BASE + 2), None, "unaligned");
        assert_eq!(p.fetch(0), None, "below text base");
    }

    #[test]
    fn entry_defaults_to_text_base() {
        let mut a = Asm::new();
        a.halt();
        let p = a.assemble().unwrap();
        assert_eq!(p.entry(), TEXT_BASE);
    }

    #[test]
    fn listing_contains_labels() {
        let mut a = Asm::new();
        let l = a.label("loop");
        a.bind(l).unwrap();
        a.jump(l);
        let p = a.assemble().unwrap();
        let listing = p.listing();
        assert!(listing.contains("loop:"));
        assert!(listing.contains('j'));
    }
}
