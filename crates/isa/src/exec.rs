//! Functional (architectural) execution of IRIS programs.
//!
//! The executor defines the ISA's semantics once; both standalone functional
//! runs and the cycle-level processor models in `imo-cpu` step programs
//! through it. Primary-data-cache hit/miss outcomes — which are
//! *architecturally visible* with informing memory operations — are supplied
//! by a [`MissOracle`], so the timing models can plug in their cache
//! hierarchy while unit tests use simple oracles like [`NeverMiss`].

use std::error::Error;
use std::fmt;

use imo_util::json::Json;
use imo_util::snapshot::{self, Snapshot, SnapshotError};

use crate::instr::{Instr, MemKind};
use crate::memimg::DataMemory;
use crate::program::Program;
use crate::reg::{Reg, RegClass};

/// How deep in the hierarchy a reference had to go. Architecturally visible
/// through the outcome condition codes (`bmiss` tests "not [`MissDepth::Hit`]",
/// `bmissmem` tests [`MissDepth::MemMiss`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum MissDepth {
    /// Served by the primary data cache.
    #[default]
    Hit,
    /// Missed in the primary cache, served by the secondary cache.
    L1Miss,
    /// Missed in both caches, served by main memory.
    MemMiss,
}

impl MissDepth {
    /// Whether the reference missed in the primary cache (the event the
    /// informing mechanisms key on).
    pub fn is_l1_miss(self) -> bool {
        self != MissDepth::Hit
    }

    /// Whether the reference went all the way to main memory.
    pub fn is_mem_miss(self) -> bool {
        self == MissDepth::MemMiss
    }
}

/// Supplies data-cache hit/miss outcomes to the executor.
///
/// `probe` is called once per executed load/store, in program order, and must
/// both *report* the outcome and *update* any internal cache state (tags,
/// LRU), because the outcome is architecturally visible through the
/// cache-outcome condition codes and the informing-trap mechanism.
pub trait MissOracle {
    /// Probes the data cache(s) for the aligned word at `addr`.
    fn probe(&mut self, addr: u64, is_store: bool) -> MissDepth;

    /// Handles a non-binding prefetch of `addr`. Default: ignored.
    fn prefetch(&mut self, addr: u64) {
        let _ = addr;
    }
}

/// Oracle for which every reference hits (flat fast memory).
#[derive(Debug, Clone, Copy, Default)]
pub struct NeverMiss;

impl MissOracle for NeverMiss {
    fn probe(&mut self, _addr: u64, _is_store: bool) -> MissDepth {
        MissDepth::Hit
    }
}

/// Oracle for which every reference misses all the way to memory (useful for
/// exercising handlers).
#[derive(Debug, Clone, Copy, Default)]
pub struct AlwaysMiss;

impl MissOracle for AlwaysMiss {
    fn probe(&mut self, _addr: u64, _is_store: bool) -> MissDepth {
        MissDepth::MemMiss
    }
}

/// Errors from functional execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// The PC left the text segment (no instruction at this address).
    InvalidPc(u64),
    /// `run` exceeded its step budget before reaching `halt`.
    StepLimit(u64),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::InvalidPc(pc) => write!(f, "no instruction at pc {pc:#x}"),
            ExecError::StepLimit(n) => write!(f, "step limit of {n} reached before halt"),
        }
    }
}

impl Error for ExecError {}

/// How an executed instruction left the control flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlFlow {
    /// Fell through to `pc + 4`.
    Sequential,
    /// A branch/jump redirected to the given target.
    Taken(u64),
    /// A not-taken conditional branch (fell through, but is a control
    /// instruction the predictor sees).
    NotTaken,
    /// An informing memory operation missed and trapped to the handler.
    InformingTrap {
        /// The handler address (contents of the MHAR).
        handler: u64,
    },
    /// The machine halted.
    Halt,
}

/// Description of the data-memory access performed by an instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccess {
    /// Byte address referenced.
    pub addr: u64,
    /// `true` for stores.
    pub is_store: bool,
    /// `true` if this was a non-binding prefetch.
    pub is_prefetch: bool,
    /// `true` if the reference missed in the primary data cache.
    pub l1_miss: bool,
    /// The memory-operation kind (normal vs informing).
    pub kind: MemKind,
}

/// Why [`Executor::step_block`] stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockExit {
    /// All requested steps executed without a batch-breaking event.
    Done,
    /// The last executed instruction was a load/store that missed in the
    /// primary data cache.
    Miss,
    /// The last executed instruction left non-sequential control flow
    /// (taken or not-taken branch, jump).
    Control,
    /// The last executed instruction was an informing operation that missed
    /// and dispatched its handler — the point where a fault plan may draw.
    Trap,
    /// The machine halted.
    Halted,
}

/// Result of one [`Executor::step_block`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockRun {
    /// Instructions actually executed (0 if already halted).
    pub executed: u32,
    /// Why the batch stopped.
    pub exit: BlockExit,
}

/// Everything the timing models need to know about one executed instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepInfo {
    /// Address of the executed instruction.
    pub pc: u64,
    /// The instruction itself.
    pub instr: Instr,
    /// Address of the next instruction on the (architecturally correct) path.
    pub next_pc: u64,
    /// The data access performed, if any.
    pub mem: Option<MemAccess>,
    /// Control-flow outcome.
    pub control: ControlFlow,
}

/// Architectural machine state.
#[derive(Debug, Clone)]
pub struct ArchState {
    int: [u64; 32],
    fp: [f64; 32],
    mem: DataMemory,
    pc: u64,
    mhar: u64,
    mhrr: u64,
    mar: u64,
    last_depth: MissDepth,
    in_handler: bool,
    informing_suppressed: bool,
    halted: bool,
}

impl ArchState {
    fn new(pc: u64) -> ArchState {
        ArchState {
            int: [0; 32],
            fp: [0.0; 32],
            mem: DataMemory::new(),
            pc,
            mhar: 0,
            mhrr: 0,
            mar: 0,
            last_depth: MissDepth::Hit,
            in_handler: false,
            informing_suppressed: false,
            halted: false,
        }
    }

    /// Reads an integer or (bit-cast) FP register as raw bits.
    pub fn raw(&self, r: Reg) -> u64 {
        match r.class() {
            RegClass::Int => self.int[r.index() as usize],
            RegClass::Fp => self.fp[r.index() as usize].to_bits(),
        }
    }

    /// Reads an integer register (`r0` reads as zero).
    pub fn int(&self, r: Reg) -> u64 {
        debug_assert_eq!(r.class(), RegClass::Int);
        self.int[r.index() as usize]
    }

    /// Reads a floating-point register.
    pub fn fp(&self, r: Reg) -> f64 {
        debug_assert_eq!(r.class(), RegClass::Fp);
        self.fp[r.index() as usize]
    }

    /// Writes an integer register (writes to `r0` are discarded).
    pub fn set_int(&mut self, r: Reg, v: u64) {
        debug_assert_eq!(r.class(), RegClass::Int);
        if !r.is_zero() {
            self.int[r.index() as usize] = v;
        }
    }

    /// Writes a floating-point register.
    pub fn set_fp(&mut self, r: Reg, v: f64) {
        debug_assert_eq!(r.class(), RegClass::Fp);
        self.fp[r.index() as usize] = v;
    }

    /// The program counter.
    pub fn pc(&self) -> u64 {
        self.pc
    }

    /// The Miss Handler Address Register.
    pub fn mhar(&self) -> u64 {
        self.mhar
    }

    /// The Miss Handler Return Register.
    pub fn mhrr(&self) -> u64 {
        self.mhrr
    }

    /// The Miss Address Register (extension; see crate docs).
    pub fn mar(&self) -> u64 {
        self.mar
    }

    /// The primary cache-outcome condition code (last data reference missed
    /// in L1?).
    pub fn miss_cc(&self) -> bool {
        self.last_depth.is_l1_miss()
    }

    /// The full outcome depth of the last data reference (the §2.1
    /// multi-level condition-code extension).
    pub fn last_depth(&self) -> MissDepth {
        self.last_depth
    }

    /// Whether execution is currently inside a miss handler (between a trap
    /// or taken `bmiss` and the matching `jmhrr`). Nested informing traps are
    /// suppressed while set.
    pub fn in_handler(&self) -> bool {
        self.in_handler
    }

    /// Whether informing traps are administratively suppressed (graceful
    /// degradation after repeated miss-handler faults). While set, informing
    /// loads/stores behave like their normal counterparts: the miss condition
    /// codes and MAR still update, but no handler is dispatched. The `bmiss`
    /// branch is *not* suppressed — it is an architectural branch, not a trap.
    pub fn informing_suppressed(&self) -> bool {
        self.informing_suppressed
    }

    /// Enables or disables informing-trap suppression (see
    /// [`ArchState::informing_suppressed`]).
    pub fn set_informing_suppressed(&mut self, suppressed: bool) {
        self.informing_suppressed = suppressed;
    }

    /// Whether the machine has executed `halt`.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// The data memory.
    pub fn memory(&self) -> &DataMemory {
        &self.mem
    }

    /// Mutable access to the data memory (for test setup).
    pub fn memory_mut(&mut self) -> &mut DataMemory {
        &mut self.mem
    }
}

impl Snapshot for ArchState {
    const KIND: &'static str = "isa.arch_state";
    const VERSION: u32 = 1;

    fn encode(&self) -> Json {
        let fp_bits: Vec<u64> = self.fp.iter().map(|v| v.to_bits()).collect();
        Json::obj([
            ("int", snapshot::u64s_json(&self.int)),
            ("fp", snapshot::u64s_json(&fp_bits)),
            ("pc", snapshot::u64_json(self.pc)),
            ("mhar", snapshot::u64_json(self.mhar)),
            ("mhrr", snapshot::u64_json(self.mhrr)),
            ("mar", snapshot::u64_json(self.mar)),
            ("last_depth", snapshot::u64_json(self.last_depth as u64)),
            ("in_handler", Json::Bool(self.in_handler)),
            ("informing_suppressed", Json::Bool(self.informing_suppressed)),
            ("halted", Json::Bool(self.halted)),
            ("mem", self.mem.encode()),
        ])
    }

    fn decode(data: &Json) -> Result<Self, SnapshotError> {
        let int_v = snapshot::get_u64s(data, "int")?;
        let fp_v = snapshot::get_u64s(data, "fp")?;
        let int: [u64; 32] = int_v.try_into().map_err(|_| SnapshotError::Bad("int"))?;
        let fp_bits: [u64; 32] = fp_v.try_into().map_err(|_| SnapshotError::Bad("fp"))?;
        let mut fp = [0.0f64; 32];
        for (dst, bits) in fp.iter_mut().zip(fp_bits) {
            *dst = f64::from_bits(bits);
        }
        let last_depth = match snapshot::get_u64(data, "last_depth")? {
            0 => MissDepth::Hit,
            1 => MissDepth::L1Miss,
            2 => MissDepth::MemMiss,
            _ => return Err(SnapshotError::Bad("last_depth")),
        };
        Ok(ArchState {
            int,
            fp,
            mem: DataMemory::decode(snapshot::field(data, "mem")?)?,
            pc: snapshot::get_u64(data, "pc")?,
            mhar: snapshot::get_u64(data, "mhar")?,
            mhrr: snapshot::get_u64(data, "mhrr")?,
            mar: snapshot::get_u64(data, "mar")?,
            last_depth,
            in_handler: snapshot::get_bool(data, "in_handler")?,
            informing_suppressed: snapshot::get_bool(data, "informing_suppressed")?,
            halted: snapshot::get_bool(data, "halted")?,
        })
    }
}

/// Steps a [`Program`] through the ISA's architectural semantics.
///
/// See the crate-level example.
#[derive(Debug, Clone)]
pub struct Executor<'p> {
    program: &'p Program,
    state: ArchState,
    instret: u64,
}

impl<'p> Executor<'p> {
    /// Creates an executor positioned at the program's entry point, with the
    /// program's initial data image loaded.
    pub fn new(program: &'p Program) -> Executor<'p> {
        let mut state = ArchState::new(program.entry());
        for &(addr, value) in program.data() {
            state.mem.write(addr, value);
        }
        Executor { program, state, instret: 0 }
    }

    /// Re-attaches a previously snapshotted architectural state to its
    /// program, restoring the retired-instruction count. Unlike
    /// [`Executor::new`] this does **not** reload the program's initial data
    /// image — `state.memory()` already holds the live contents.
    pub fn restore(program: &'p Program, state: ArchState, instret: u64) -> Executor<'p> {
        Executor { program, state, instret }
    }

    /// The architectural state.
    pub fn state(&self) -> &ArchState {
        &self.state
    }

    /// Mutable architectural state (for test setup).
    pub fn state_mut(&mut self) -> &mut ArchState {
        &mut self.state
    }

    /// Number of instructions retired so far.
    pub fn instret(&self) -> u64 {
        self.instret
    }

    /// Executes one instruction.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::InvalidPc`] if the PC does not name an
    /// instruction. Stepping a halted machine returns a `Halt` step at the
    /// current PC without executing anything.
    pub fn step(&mut self, oracle: &mut dyn MissOracle) -> Result<StepInfo, ExecError> {
        let pc = self.state.pc;
        if self.state.halted {
            return Ok(StepInfo {
                pc,
                instr: Instr::Halt,
                next_pc: pc,
                mem: None,
                control: ControlFlow::Halt,
            });
        }
        let instr = self.program.fetch(pc).ok_or(ExecError::InvalidPc(pc))?;
        let s = &mut self.state;
        let mut next_pc = pc.wrapping_add(4);
        let mut control = ControlFlow::Sequential;
        let mut mem = None;

        use Instr::*;
        match instr {
            Add { rd, rs, rt } => s.set_int(rd, s.int(rs).wrapping_add(s.int(rt))),
            Sub { rd, rs, rt } => s.set_int(rd, s.int(rs).wrapping_sub(s.int(rt))),
            And { rd, rs, rt } => s.set_int(rd, s.int(rs) & s.int(rt)),
            Or { rd, rs, rt } => s.set_int(rd, s.int(rs) | s.int(rt)),
            Xor { rd, rs, rt } => s.set_int(rd, s.int(rs) ^ s.int(rt)),
            Sll { rd, rs, sh } => s.set_int(rd, s.int(rs) << (sh & 63)),
            Srl { rd, rs, sh } => s.set_int(rd, s.int(rs) >> (sh & 63)),
            Slt { rd, rs, rt } => s.set_int(rd, ((s.int(rs) as i64) < (s.int(rt) as i64)) as u64),
            Addi { rd, rs, imm } => s.set_int(rd, s.int(rs).wrapping_add(imm as u64)),
            Andi { rd, rs, imm } => s.set_int(rd, s.int(rs) & imm),
            Li { rd, imm } => s.set_int(rd, imm as u64),
            Mul { rd, rs, rt } => {
                s.set_int(rd, (s.int(rs) as i64).wrapping_mul(s.int(rt) as i64) as u64)
            }
            Div { rd, rs, rt } => {
                let d = s.int(rt) as i64;
                let v = if d == 0 { 0 } else { (s.int(rs) as i64).wrapping_div(d) };
                s.set_int(rd, v as u64);
            }
            Fadd { fd, fs, ft } => s.set_fp(fd, s.fp(fs) + s.fp(ft)),
            Fsub { fd, fs, ft } => s.set_fp(fd, s.fp(fs) - s.fp(ft)),
            Fmul { fd, fs, ft } => s.set_fp(fd, s.fp(fs) * s.fp(ft)),
            Fdiv { fd, fs, ft } => s.set_fp(fd, s.fp(fs) / s.fp(ft)),
            Fsqrt { fd, fs } => s.set_fp(fd, s.fp(fs).sqrt()),
            Fmov { fd, fs } => s.set_fp(fd, s.fp(fs)),
            Fli { fd, imm } => s.set_fp(fd, imm),
            Cvtif { fd, rs } => s.set_fp(fd, s.int(rs) as i64 as f64),
            Cvtfi { rd, fs } => {
                let v = s.fp(fs);
                let v = if v.is_nan() { 0 } else { v as i64 };
                s.set_int(rd, v as u64);
            }
            Fcmplt { rd, fs, ft } => s.set_int(rd, (s.fp(fs) < s.fp(ft)) as u64),

            Load { rd, base, offset, kind } => {
                let addr = s.int(base).wrapping_add(offset as u64);
                let depth = oracle.probe(addr, false);
                let miss = depth.is_l1_miss();
                s.last_depth = depth;
                if miss {
                    s.mar = addr;
                }
                let word = s.mem.read(addr);
                match rd.class() {
                    RegClass::Int => s.set_int(rd, word),
                    RegClass::Fp => s.set_fp(rd, f64::from_bits(word)),
                }
                mem = Some(MemAccess {
                    addr,
                    is_store: false,
                    is_prefetch: false,
                    l1_miss: miss,
                    kind,
                });
                if miss
                    && kind == MemKind::Informing
                    && s.mhar != 0
                    && !s.in_handler
                    && !s.informing_suppressed
                {
                    s.mhrr = pc.wrapping_add(4);
                    s.in_handler = true;
                    next_pc = s.mhar;
                    control = ControlFlow::InformingTrap { handler: s.mhar };
                }
            }
            Store { rs, base, offset, kind } => {
                let addr = s.int(base).wrapping_add(offset as u64);
                let depth = oracle.probe(addr, true);
                let miss = depth.is_l1_miss();
                s.last_depth = depth;
                if miss {
                    s.mar = addr;
                }
                let word = s.raw(rs);
                s.mem.write(addr, word);
                mem = Some(MemAccess {
                    addr,
                    is_store: true,
                    is_prefetch: false,
                    l1_miss: miss,
                    kind,
                });
                if miss
                    && kind == MemKind::Informing
                    && s.mhar != 0
                    && !s.in_handler
                    && !s.informing_suppressed
                {
                    s.mhrr = pc.wrapping_add(4);
                    s.in_handler = true;
                    next_pc = s.mhar;
                    control = ControlFlow::InformingTrap { handler: s.mhar };
                }
            }
            Prefetch { base, offset } => {
                let addr = s.int(base).wrapping_add(offset as u64);
                oracle.prefetch(addr);
                mem = Some(MemAccess {
                    addr,
                    is_store: false,
                    is_prefetch: true,
                    l1_miss: false,
                    kind: MemKind::Normal,
                });
            }

            Branch { cond, rs, rt, target } => {
                if cond.eval(s.int(rs), s.int(rt)) {
                    next_pc = target;
                    control = ControlFlow::Taken(target);
                } else {
                    control = ControlFlow::NotTaken;
                }
            }
            Jump { target } => {
                next_pc = target;
                control = ControlFlow::Taken(target);
            }
            Jal { target } => {
                s.set_int(Reg::LINK, pc.wrapping_add(4));
                next_pc = target;
                control = ControlFlow::Taken(target);
            }
            Jr { rs } => {
                next_pc = s.int(rs);
                control = ControlFlow::Taken(next_pc);
            }

            BranchOnMiss { target } => {
                if s.last_depth.is_l1_miss() && !s.in_handler {
                    s.mhrr = pc.wrapping_add(4);
                    s.in_handler = true;
                    next_pc = target;
                    control = ControlFlow::Taken(target);
                } else {
                    control = ControlFlow::NotTaken;
                }
            }
            BranchOnMemMiss { target } => {
                if s.last_depth.is_mem_miss() && !s.in_handler {
                    s.mhrr = pc.wrapping_add(4);
                    s.in_handler = true;
                    next_pc = target;
                    control = ControlFlow::Taken(target);
                } else {
                    control = ControlFlow::NotTaken;
                }
            }
            SetMhar { target } => s.mhar = target,
            SetMharReg { rs } => s.mhar = s.int(rs),
            SetMhrrReg { rs } => s.mhrr = s.int(rs),
            ReadMhrr { rd } => s.set_int(rd, s.mhrr),
            ReadMar { rd } => s.set_int(rd, s.mar),
            JumpMhrr => {
                s.in_handler = false;
                next_pc = s.mhrr;
                control = ControlFlow::Taken(next_pc);
            }

            Nop => {}
            Halt => {
                s.halted = true;
                next_pc = pc;
                control = ControlFlow::Halt;
            }
        }

        self.state.pc = next_pc;
        self.instret += 1;
        Ok(StepInfo { pc, instr, next_pc, mem, control })
    }

    /// The program this executor steps.
    #[inline]
    pub fn program(&self) -> &'p Program {
        self.program
    }

    /// Executes up to `max_steps` instructions in one call, stopping early
    /// at the first batch-breaking event: a primary-cache miss, any control
    /// transfer (including an informing trap, where a fault plan may need to
    /// draw), or halt. `max_steps` is the caller's watch boundary — a
    /// checkpoint `stop_at` or fetch-group limit lands there exactly.
    ///
    /// Semantics are single-sourced: each instruction goes through
    /// [`Executor::step`], so a batch of `n` steps is bit-identical to `n`
    /// individual steps against the same oracle.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::InvalidPc`] if execution leaves the text
    /// segment; instructions executed before the fault are retained.
    pub fn step_block(
        &mut self,
        oracle: &mut dyn MissOracle,
        max_steps: u32,
    ) -> Result<BlockRun, ExecError> {
        let mut executed = 0;
        while executed < max_steps {
            if self.state.halted {
                return Ok(BlockRun { executed, exit: BlockExit::Halted });
            }
            let info = self.step(oracle)?;
            executed += 1;
            let exit = match info.control {
                ControlFlow::Halt => Some(BlockExit::Halted),
                ControlFlow::InformingTrap { .. } => Some(BlockExit::Trap),
                ControlFlow::Taken(_) | ControlFlow::NotTaken => Some(BlockExit::Control),
                ControlFlow::Sequential => info.mem.filter(|m| m.l1_miss).map(|_| BlockExit::Miss),
            };
            if let Some(exit) = exit {
                return Ok(BlockRun { executed, exit });
            }
        }
        Ok(BlockRun { executed, exit: BlockExit::Done })
    }

    /// Executes `n` consecutive instructions the caller knows to be *plain*
    /// (no memory access, no control transfer, no trap, no halt — e.g.
    /// checked against [`crate::BlockCache::plain_run_len`]). Equivalent to
    /// `n` calls to [`Executor::step`] with [`NeverMiss`], but skips the
    /// per-instruction fetch arithmetic, [`StepInfo`] materialization and
    /// control dispatch that plain instructions never need.
    ///
    /// If an instruction in the range turns out not to be plain (a caller
    /// invariant violation), the remainder of the batch is executed through
    /// [`Executor::step_block`], preserving exact architectural semantics.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::InvalidPc`] if the range leaves the text
    /// segment.
    pub fn step_plain_run(&mut self, n: u32) -> Result<(), ExecError> {
        let pc = self.state.pc;
        let off = pc.wrapping_sub(crate::program::TEXT_BASE);
        let idx = (off >> 2) as usize;
        let end = idx + n as usize;
        if off & 3 != 0 || end > self.program.instrs().len() {
            return Err(ExecError::InvalidPc(pc));
        }
        let program = self.program;
        use Instr::*;
        for (i, instr) in program.instrs()[idx..end].iter().enumerate() {
            let s = &mut self.state;
            match *instr {
                Add { rd, rs, rt } => s.set_int(rd, s.int(rs).wrapping_add(s.int(rt))),
                Sub { rd, rs, rt } => s.set_int(rd, s.int(rs).wrapping_sub(s.int(rt))),
                And { rd, rs, rt } => s.set_int(rd, s.int(rs) & s.int(rt)),
                Or { rd, rs, rt } => s.set_int(rd, s.int(rs) | s.int(rt)),
                Xor { rd, rs, rt } => s.set_int(rd, s.int(rs) ^ s.int(rt)),
                Sll { rd, rs, sh } => s.set_int(rd, s.int(rs) << (sh & 63)),
                Srl { rd, rs, sh } => s.set_int(rd, s.int(rs) >> (sh & 63)),
                Slt { rd, rs, rt } => {
                    s.set_int(rd, ((s.int(rs) as i64) < (s.int(rt) as i64)) as u64);
                }
                Addi { rd, rs, imm } => s.set_int(rd, s.int(rs).wrapping_add(imm as u64)),
                Andi { rd, rs, imm } => s.set_int(rd, s.int(rs) & imm),
                Li { rd, imm } => s.set_int(rd, imm as u64),
                Mul { rd, rs, rt } => {
                    s.set_int(rd, (s.int(rs) as i64).wrapping_mul(s.int(rt) as i64) as u64);
                }
                Div { rd, rs, rt } => {
                    let d = s.int(rt) as i64;
                    let v = if d == 0 { 0 } else { (s.int(rs) as i64).wrapping_div(d) };
                    s.set_int(rd, v as u64);
                }
                Fadd { fd, fs, ft } => s.set_fp(fd, s.fp(fs) + s.fp(ft)),
                Fsub { fd, fs, ft } => s.set_fp(fd, s.fp(fs) - s.fp(ft)),
                Fmul { fd, fs, ft } => s.set_fp(fd, s.fp(fs) * s.fp(ft)),
                Fdiv { fd, fs, ft } => s.set_fp(fd, s.fp(fs) / s.fp(ft)),
                Fsqrt { fd, fs } => s.set_fp(fd, s.fp(fs).sqrt()),
                Fmov { fd, fs } => s.set_fp(fd, s.fp(fs)),
                Fli { fd, imm } => s.set_fp(fd, imm),
                Cvtif { fd, rs } => s.set_fp(fd, s.int(rs) as i64 as f64),
                Cvtfi { rd, fs } => {
                    let v = s.fp(fs);
                    let v = if v.is_nan() { 0 } else { v as i64 };
                    s.set_int(rd, v as u64);
                }
                Fcmplt { rd, fs, ft } => s.set_int(rd, (s.fp(fs) < s.fp(ft)) as u64),
                SetMhar { target } => s.mhar = target,
                SetMharReg { rs } => s.mhar = s.int(rs),
                SetMhrrReg { rs } => s.mhrr = s.int(rs),
                ReadMhrr { rd } => s.set_int(rd, s.mhrr),
                ReadMar { rd } => s.set_int(rd, s.mar),
                Nop => {}
                _ => {
                    // Not plain: the caller's run-length invariant is broken.
                    // Commit the plain prefix, then take the single-sourced
                    // generic path for the rest.
                    debug_assert!(false, "step_plain_run hit a non-plain instruction");
                    s.pc = pc + 4 * i as u64;
                    self.instret += i as u64;
                    self.step_block(&mut NeverMiss, n - i as u32)?;
                    return Ok(());
                }
            }
        }
        self.state.pc = pc + 4 * u64::from(n);
        self.instret += u64::from(n);
        Ok(())
    }

    /// Consumes the executor, yielding the final architectural state.
    pub fn into_state(self) -> ArchState {
        self.state
    }

    /// Runs until `halt` or until `max_steps` instructions have executed.
    ///
    /// Returns the number of instructions executed.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::StepLimit`] if the budget is exhausted before
    /// halting, or [`ExecError::InvalidPc`] if execution leaves the text
    /// segment.
    pub fn run(&mut self, oracle: &mut dyn MissOracle, max_steps: u64) -> Result<u64, ExecError> {
        let mut n = 0;
        while !self.state.halted {
            if n >= max_steps {
                return Err(ExecError::StepLimit(max_steps));
            }
            self.step(oracle)?;
            n += 1;
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;
    use crate::instr::Cond;

    fn r(i: u8) -> Reg {
        Reg::int(i)
    }

    #[test]
    fn arithmetic_loop_sums() {
        // sum 1..=10
        let mut a = Asm::new();
        let (sum, i, n) = (r(1), r(2), r(3));
        a.li(sum, 0);
        a.li(i, 1);
        a.li(n, 10);
        let top = a.here("top");
        a.add(sum, sum, i);
        a.addi(i, i, 1);
        a.branch(Cond::Le, i, n, top);
        a.halt();
        let p = a.assemble().unwrap();
        let mut e = Executor::new(&p);
        e.run(&mut NeverMiss, 1000).unwrap();
        assert_eq!(e.state().int(sum), 55);
    }

    #[test]
    fn loads_and_stores_round_trip() {
        let mut a = Asm::new();
        let (base, v) = (r(1), r(2));
        a.li(base, 0x2000);
        a.li(v, 77);
        a.store(v, base, 16);
        a.load(r(3), base, 16);
        a.halt();
        let p = a.assemble().unwrap();
        let mut e = Executor::new(&p);
        e.run(&mut NeverMiss, 100).unwrap();
        assert_eq!(e.state().int(r(3)), 77);
    }

    #[test]
    fn fp_pipeline() {
        let mut a = Asm::new();
        let (f1, f2, f3) = (Reg::fp(1), Reg::fp(2), Reg::fp(3));
        a.fli(f1, 9.0);
        a.fsqrt(f2, f1);
        a.fli(f3, 0.5);
        a.fmul(f1, f2, f3);
        a.halt();
        let p = a.assemble().unwrap();
        let mut e = Executor::new(&p);
        e.run(&mut NeverMiss, 100).unwrap();
        assert_eq!(e.state().fp(f1), 1.5);
    }

    #[test]
    fn informing_trap_runs_handler() {
        // Handler increments r10; main does one informing load that misses.
        let mut a = Asm::new();
        let handler = a.label("handler");
        a.set_mhar(handler);
        a.li(r(1), 0x4000);
        a.load_inf(r(2), r(1), 0);
        a.halt();
        a.bind(handler).unwrap();
        a.addi(r(10), r(10), 1);
        a.jump_mhrr();
        let p = a.assemble().unwrap();

        let mut e = Executor::new(&p);
        e.run(&mut AlwaysMiss, 100).unwrap();
        assert_eq!(e.state().int(r(10)), 1, "handler ran once");
        assert!(!e.state().in_handler());

        let mut e = Executor::new(&p);
        e.run(&mut NeverMiss, 100).unwrap();
        assert_eq!(e.state().int(r(10)), 0, "no trap on hits");
    }

    #[test]
    fn mhar_zero_disables_trap() {
        let mut a = Asm::new();
        a.li(r(1), 0x4000);
        a.load_inf(r(2), r(1), 0);
        a.halt();
        let p = a.assemble().unwrap();
        let mut e = Executor::new(&p);
        e.run(&mut AlwaysMiss, 100).unwrap();
        assert!(e.state().halted());
        assert!(e.state().miss_cc(), "condition code still records the miss");
    }

    #[test]
    fn normal_loads_never_trap() {
        let mut a = Asm::new();
        let handler = a.label("h");
        a.set_mhar(handler);
        a.li(r(1), 0x4000);
        a.load(r(2), r(1), 0);
        a.halt();
        a.bind(handler).unwrap();
        a.addi(r(10), r(10), 1);
        a.jump_mhrr();
        let p = a.assemble().unwrap();
        let mut e = Executor::new(&p);
        e.run(&mut AlwaysMiss, 100).unwrap();
        assert_eq!(e.state().int(r(10)), 0);
    }

    #[test]
    fn branch_on_miss_condition_code() {
        let mut a = Asm::new();
        let handler = a.label("h");
        a.li(r(1), 0x4000);
        a.load(r(2), r(1), 0);
        a.branch_on_miss(handler);
        a.halt();
        a.bind(handler).unwrap();
        a.addi(r(10), r(10), 1);
        a.jump_mhrr();
        let p = a.assemble().unwrap();

        let mut e = Executor::new(&p);
        e.run(&mut AlwaysMiss, 100).unwrap();
        assert_eq!(e.state().int(r(10)), 1);

        let mut e = Executor::new(&p);
        e.run(&mut NeverMiss, 100).unwrap();
        assert_eq!(e.state().int(r(10)), 0);
    }

    #[test]
    fn handler_reads_mhrr_and_mar() {
        let mut a = Asm::new();
        let handler = a.label("h");
        a.set_mhar(handler);
        a.li(r(1), 0x4000);
        a.load_inf(r(2), r(1), 8); // pc = TEXT_BASE + 8
        a.halt();
        a.bind(handler).unwrap();
        a.read_mhrr(r(11));
        a.read_mar(r(12));
        a.jump_mhrr();
        let p = a.assemble().unwrap();
        let mut e = Executor::new(&p);
        e.run(&mut AlwaysMiss, 100).unwrap();
        assert_eq!(e.state().int(r(11)), crate::program::TEXT_BASE + 12);
        assert_eq!(e.state().int(r(12)), 0x4008);
    }

    #[test]
    fn no_nested_traps_inside_handler() {
        // Handler itself performs an informing load that misses; it must not
        // re-trap (which would clobber the MHRR and loop forever).
        let mut a = Asm::new();
        let handler = a.label("h");
        a.set_mhar(handler);
        a.li(r(1), 0x4000);
        a.load_inf(r(2), r(1), 0);
        a.halt();
        a.bind(handler).unwrap();
        a.addi(r(10), r(10), 1);
        a.load_inf(r(3), r(1), 64);
        a.jump_mhrr();
        let p = a.assemble().unwrap();
        let mut e = Executor::new(&p);
        e.run(&mut AlwaysMiss, 100).unwrap();
        assert_eq!(e.state().int(r(10)), 1);
        assert!(e.state().halted());
    }

    #[test]
    fn step_info_reports_memory_access() {
        let mut a = Asm::new();
        a.li(r(1), 0x8000);
        a.store(r(1), r(1), 0);
        a.halt();
        let p = a.assemble().unwrap();
        let mut e = Executor::new(&p);
        e.step(&mut NeverMiss).unwrap();
        let info = e.step(&mut NeverMiss).unwrap();
        let m = info.mem.expect("store accesses memory");
        assert_eq!(m.addr, 0x8000);
        assert!(m.is_store);
        assert!(!m.l1_miss);
    }

    #[test]
    fn step_after_halt_is_idempotent() {
        let mut a = Asm::new();
        a.halt();
        let p = a.assemble().unwrap();
        let mut e = Executor::new(&p);
        e.step(&mut NeverMiss).unwrap();
        let info = e.step(&mut NeverMiss).unwrap();
        assert_eq!(info.control, ControlFlow::Halt);
        assert_eq!(e.state().pc(), crate::program::TEXT_BASE);
    }

    #[test]
    fn invalid_pc_is_reported() {
        let mut a = Asm::new();
        a.nop(); // falls off the end
        let p = a.assemble().unwrap();
        let mut e = Executor::new(&p);
        e.step(&mut NeverMiss).unwrap();
        assert!(matches!(e.step(&mut NeverMiss), Err(ExecError::InvalidPc(_))));
    }

    #[test]
    fn run_respects_step_limit() {
        let mut a = Asm::new();
        let top = a.here("top");
        a.jump(top);
        let p = a.assemble().unwrap();
        let mut e = Executor::new(&p);
        assert_eq!(e.run(&mut NeverMiss, 10), Err(ExecError::StepLimit(10)));
    }

    #[test]
    fn data_image_preloaded() {
        let mut a = Asm::new();
        a.word(0x3000, 123);
        a.li(r(1), 0x3000);
        a.load(r(2), r(1), 0);
        a.halt();
        let p = a.assemble().unwrap();
        let mut e = Executor::new(&p);
        e.run(&mut NeverMiss, 100).unwrap();
        assert_eq!(e.state().int(r(2)), 123);
    }

    #[test]
    fn jal_jr_call_return() {
        let mut a = Asm::new();
        let func = a.label("func");
        a.jal(func);
        a.halt();
        a.bind(func).unwrap();
        a.li(r(5), 99);
        a.jr(Reg::LINK);
        let p = a.assemble().unwrap();
        let mut e = Executor::new(&p);
        e.run(&mut NeverMiss, 100).unwrap();
        assert_eq!(e.state().int(r(5)), 99);
        assert!(e.state().halted());
    }

    #[test]
    fn handler_can_redirect_its_return() {
        // The multithreading primitive: the handler overwrites the MHRR so
        // JumpMhrr resumes somewhere else (here: straight to `done`).
        let mut a = Asm::new();
        let handler = a.label("h");
        let done = a.label("done");
        a.set_mhar(handler);
        a.li(r(1), 0x4000);
        a.load_inf(r(2), r(1), 0);
        a.addi(r(9), r(9), 1) /* skipped when redirected */;
        a.bind(done).unwrap();
        a.halt();
        a.bind(handler).unwrap();
        a.li(r(3), (crate::program::TEXT_BASE + 16) as i64); // addr of `done`'s halt
        a.set_mhrr_reg(r(3));
        a.jump_mhrr();
        let p = a.assemble().unwrap();
        let mut e = Executor::new(&p);
        e.run(&mut AlwaysMiss, 100).unwrap();
        assert_eq!(e.state().int(r(9)), 0, "redirected return skipped the addi");
        assert!(e.state().halted());
    }

    #[test]
    fn snapshot_mid_run_resumes_identically() {
        // Run half of a trap-heavy program, snapshot, restore through the
        // wire format, and finish both copies: final states must agree.
        let mut a = Asm::new();
        let handler = a.label("h");
        a.set_mhar(handler);
        a.li(r(1), 0x4000);
        let top = a.here("top");
        a.load_inf(r(2), r(1), 0);
        a.addi(r(1), r(1), 64);
        a.addi(r(4), r(4), 1);
        a.branch(Cond::Lt, r(4), r(5), top);
        a.halt();
        a.bind(handler).unwrap();
        a.addi(r(10), r(10), 1);
        a.jump_mhrr();
        let mut a2 = Asm::new();
        a2.li(r(5), 6);
        let p = a.assemble().unwrap();
        drop(a2);

        let mut reference = Executor::new(&p);
        reference.state_mut().set_int(r(5), 6);
        reference.run(&mut AlwaysMiss, 1000).unwrap();

        let mut first = Executor::new(&p);
        first.state_mut().set_int(r(5), 6);
        for _ in 0..9 {
            first.step(&mut AlwaysMiss).unwrap();
        }
        let wire = first.state().to_wire().pretty();
        let instret = first.instret();
        let restored =
            ArchState::from_wire(&imo_util::json::parse(&wire).unwrap()).expect("decodes");
        let mut second = Executor::restore(&p, restored, instret);
        assert_eq!(second.instret(), instret);
        second.run(&mut AlwaysMiss, 1000).unwrap();
        assert_eq!(second.instret(), reference.instret());
        let (a_st, b_st) = (reference.into_state(), second.into_state());
        assert_eq!(a_st.encode(), b_st.encode(), "resumed state bit-identical");
    }

    #[test]
    fn step_block_matches_individual_steps() {
        let mut a = Asm::new();
        let (sum, i, n) = (r(1), r(2), r(3));
        a.li(sum, 0);
        a.li(i, 1);
        a.li(n, 10);
        let top = a.here("top");
        a.add(sum, sum, i);
        a.addi(i, i, 1);
        a.branch(Cond::Le, i, n, top);
        a.halt();
        let p = a.assemble().unwrap();

        let mut batched = Executor::new(&p);
        while !batched.state().halted() {
            batched.step_block(&mut NeverMiss, 4).unwrap();
        }
        let mut stepped = Executor::new(&p);
        while !stepped.state().halted() {
            stepped.step(&mut NeverMiss).unwrap();
        }
        assert_eq!(batched.instret(), stepped.instret());
        assert_eq!(batched.into_state().encode(), stepped.into_state().encode());
    }

    #[test]
    fn step_block_early_outs() {
        let mut a = Asm::new();
        let out = a.label("out");
        a.li(r(1), 0x4000);
        a.load(r(2), r(1), 0); // miss breaks the batch
        a.nop();
        a.nop();
        a.jump(out); // control breaks it
        a.bind(out).unwrap();
        a.halt();
        let p = a.assemble().unwrap();
        let mut e = Executor::new(&p);
        let run = e.step_block(&mut AlwaysMiss, 16).unwrap();
        assert_eq!((run.executed, run.exit), (2, BlockExit::Miss));
        let run = e.step_block(&mut AlwaysMiss, 16).unwrap();
        assert_eq!((run.executed, run.exit), (3, BlockExit::Control));
        let run = e.step_block(&mut AlwaysMiss, 16).unwrap();
        assert_eq!((run.executed, run.exit), (1, BlockExit::Halted));
        let run = e.step_block(&mut AlwaysMiss, 16).unwrap();
        assert_eq!((run.executed, run.exit), (0, BlockExit::Halted), "halted machine");
    }

    #[test]
    fn step_block_respects_the_watch_boundary() {
        let mut a = Asm::new();
        for _ in 0..10 {
            a.nop();
        }
        a.halt();
        let p = a.assemble().unwrap();
        let mut e = Executor::new(&p);
        let run = e.step_block(&mut NeverMiss, 3).unwrap();
        assert_eq!((run.executed, run.exit), (3, BlockExit::Done));
        assert_eq!(e.instret(), 3);
    }

    #[test]
    fn step_block_stops_at_informing_trap() {
        let mut a = Asm::new();
        let handler = a.label("h");
        a.set_mhar(handler);
        a.li(r(1), 0x4000);
        a.load_inf(r(2), r(1), 0);
        a.halt();
        a.bind(handler).unwrap();
        a.jump_mhrr();
        let p = a.assemble().unwrap();
        let mut e = Executor::new(&p);
        let run = e.step_block(&mut AlwaysMiss, 16).unwrap();
        assert_eq!((run.executed, run.exit), (3, BlockExit::Trap));
        assert!(e.state().in_handler());
    }

    #[test]
    fn div_by_zero_yields_zero() {
        let mut a = Asm::new();
        a.li(r(1), 10);
        a.li(r(2), 0);
        a.div(r(3), r(1), r(2));
        a.halt();
        let p = a.assemble().unwrap();
        let mut e = Executor::new(&p);
        e.run(&mut NeverMiss, 100).unwrap();
        assert_eq!(e.state().int(r(3)), 0);
    }
}
