//! A small assembler DSL for building [`Program`]s.

use std::error::Error;
use std::fmt;

use crate::instr::{Cond, Instr, MemKind};
use crate::program::{Program, TEXT_BASE};
use crate::reg::Reg;

/// A handle to a (possibly not-yet-bound) code label.
///
/// Created with [`Asm::label`], bound to the current position with
/// [`Asm::bind`], and referenced by branch/jump/informing instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// Errors produced by [`Asm::assemble`] and [`Asm::bind`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A label was referenced but never bound.
    UnboundLabel(String),
    /// [`Asm::bind`] was called twice for the same label.
    DuplicateBind(String),
    /// The program has no instructions.
    EmptyProgram,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UnboundLabel(n) => write!(f, "label `{n}` referenced but never bound"),
            AsmError::DuplicateBind(n) => write!(f, "label `{n}` bound more than once"),
            AsmError::EmptyProgram => write!(f, "program contains no instructions"),
        }
    }
}

impl Error for AsmError {}

#[derive(Debug, Clone)]
struct LabelInfo {
    name: String,
    addr: Option<u64>,
}

/// Pending label patch: instruction index whose target must be filled in.
#[derive(Debug, Clone, Copy)]
struct Fixup {
    instr: usize,
    label: Label,
}

/// Builder for [`Program`]s.
///
/// Each emit method appends one instruction; control-flow methods accept
/// [`Label`]s that may be bound before or after the reference (forward
/// branches are patched at [`Asm::assemble`] time).
///
/// # Example
///
/// ```
/// use imo_isa::{Asm, Reg, Cond};
///
/// let mut a = Asm::new();
/// let (r1, r2) = (Reg::int(1), Reg::int(2));
/// let top = a.label("top");
/// a.li(r1, 0);
/// a.li(r2, 10);
/// a.bind(top).unwrap();
/// a.addi(r1, r1, 1);
/// a.branch(Cond::Lt, r1, r2, top);
/// a.halt();
/// let p = a.assemble().unwrap();
/// assert_eq!(p.len(), 5);
/// ```
#[derive(Debug, Default)]
pub struct Asm {
    instrs: Vec<Instr>,
    labels: Vec<LabelInfo>,
    fixups: Vec<Fixup>,
    data: Vec<(u64, u64)>,
    entry: Option<Label>,
}

impl Asm {
    /// Creates an empty assembler.
    pub fn new() -> Asm {
        Asm::default()
    }

    /// Declares a new label named `name` (not yet bound to an address).
    pub fn label(&mut self, name: &str) -> Label {
        self.labels.push(LabelInfo { name: name.to_string(), addr: None });
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the address of the *next* emitted instruction.
    ///
    /// # Errors
    ///
    /// Returns [`AsmError::DuplicateBind`] if the label was already bound.
    pub fn bind(&mut self, label: Label) -> Result<(), AsmError> {
        let info = &mut self.labels[label.0];
        if info.addr.is_some() {
            return Err(AsmError::DuplicateBind(info.name.clone()));
        }
        info.addr = Some(Program::addr_of(self.instrs.len()));
        Ok(())
    }

    /// Declares and immediately binds a label at the current position.
    pub fn here(&mut self, name: &str) -> Label {
        let l = self.label(name);
        self.bind(l).expect("fresh label cannot be already bound");
        l
    }

    /// Sets the entry point to `label` (defaults to the first instruction).
    pub fn entry(&mut self, label: Label) {
        self.entry = Some(label);
    }

    /// Adds an initial data word at byte address `addr`.
    pub fn word(&mut self, addr: u64, value: u64) {
        self.data.push((addr, value));
    }

    /// Adds an initial data double at byte address `addr`.
    pub fn double(&mut self, addr: u64, value: f64) {
        self.data.push((addr, value.to_bits()));
    }

    /// The address the next emitted instruction will have.
    pub fn next_addr(&self) -> u64 {
        Program::addr_of(self.instrs.len())
    }

    /// Number of instructions emitted so far.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether no instructions have been emitted.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Appends an arbitrary pre-built instruction.
    pub fn emit(&mut self, instr: Instr) {
        self.instrs.push(instr);
    }

    fn emit_fixup(&mut self, instr: Instr, label: Label) {
        self.fixups.push(Fixup { instr: self.instrs.len(), label });
        self.instrs.push(instr);
    }

    // ---- integer ALU ----

    /// `rd = rs + rt`
    pub fn add(&mut self, rd: Reg, rs: Reg, rt: Reg) {
        self.emit(Instr::Add { rd, rs, rt });
    }
    /// `rd = rs - rt`
    pub fn sub(&mut self, rd: Reg, rs: Reg, rt: Reg) {
        self.emit(Instr::Sub { rd, rs, rt });
    }
    /// `rd = rs & rt`
    pub fn and(&mut self, rd: Reg, rs: Reg, rt: Reg) {
        self.emit(Instr::And { rd, rs, rt });
    }
    /// `rd = rs | rt`
    pub fn or(&mut self, rd: Reg, rs: Reg, rt: Reg) {
        self.emit(Instr::Or { rd, rs, rt });
    }
    /// `rd = rs ^ rt`
    pub fn xor(&mut self, rd: Reg, rs: Reg, rt: Reg) {
        self.emit(Instr::Xor { rd, rs, rt });
    }
    /// `rd = rs << sh`
    pub fn sll(&mut self, rd: Reg, rs: Reg, sh: u8) {
        self.emit(Instr::Sll { rd, rs, sh });
    }
    /// `rd = rs >> sh`
    pub fn srl(&mut self, rd: Reg, rs: Reg, sh: u8) {
        self.emit(Instr::Srl { rd, rs, sh });
    }
    /// `rd = (rs < rt) ? 1 : 0`
    pub fn slt(&mut self, rd: Reg, rs: Reg, rt: Reg) {
        self.emit(Instr::Slt { rd, rs, rt });
    }
    /// `rd = rs + imm`
    pub fn addi(&mut self, rd: Reg, rs: Reg, imm: i64) {
        self.emit(Instr::Addi { rd, rs, imm });
    }
    /// `rd = rs & imm`
    pub fn andi(&mut self, rd: Reg, rs: Reg, imm: u64) {
        self.emit(Instr::Andi { rd, rs, imm });
    }
    /// `rd = imm`
    pub fn li(&mut self, rd: Reg, imm: i64) {
        self.emit(Instr::Li { rd, imm });
    }
    /// `rd = rs * rt`
    pub fn mul(&mut self, rd: Reg, rs: Reg, rt: Reg) {
        self.emit(Instr::Mul { rd, rs, rt });
    }
    /// `rd = rs / rt`
    pub fn div(&mut self, rd: Reg, rs: Reg, rt: Reg) {
        self.emit(Instr::Div { rd, rs, rt });
    }

    // ---- floating point ----

    /// `fd = fs + ft`
    pub fn fadd(&mut self, fd: Reg, fs: Reg, ft: Reg) {
        self.emit(Instr::Fadd { fd, fs, ft });
    }
    /// `fd = fs - ft`
    pub fn fsub(&mut self, fd: Reg, fs: Reg, ft: Reg) {
        self.emit(Instr::Fsub { fd, fs, ft });
    }
    /// `fd = fs * ft`
    pub fn fmul(&mut self, fd: Reg, fs: Reg, ft: Reg) {
        self.emit(Instr::Fmul { fd, fs, ft });
    }
    /// `fd = fs / ft`
    pub fn fdiv(&mut self, fd: Reg, fs: Reg, ft: Reg) {
        self.emit(Instr::Fdiv { fd, fs, ft });
    }
    /// `fd = sqrt(fs)`
    pub fn fsqrt(&mut self, fd: Reg, fs: Reg) {
        self.emit(Instr::Fsqrt { fd, fs });
    }
    /// `fd = fs`
    pub fn fmov(&mut self, fd: Reg, fs: Reg) {
        self.emit(Instr::Fmov { fd, fs });
    }
    /// `fd = imm`
    pub fn fli(&mut self, fd: Reg, imm: f64) {
        self.emit(Instr::Fli { fd, imm });
    }
    /// `fd = (f64) rs`
    pub fn cvtif(&mut self, fd: Reg, rs: Reg) {
        self.emit(Instr::Cvtif { fd, rs });
    }
    /// `rd = (i64) fs`
    pub fn cvtfi(&mut self, rd: Reg, fs: Reg) {
        self.emit(Instr::Cvtfi { rd, fs });
    }
    /// `rd = (fs < ft) ? 1 : 0`
    pub fn fcmplt(&mut self, rd: Reg, fs: Reg, ft: Reg) {
        self.emit(Instr::Fcmplt { rd, fs, ft });
    }

    // ---- memory ----

    /// `rd = mem[base + offset]` (ordinary load)
    pub fn load(&mut self, rd: Reg, base: Reg, offset: i64) {
        self.emit(Instr::Load { rd, base, offset, kind: MemKind::Normal });
    }
    /// `rd = mem[base + offset]` (informing load)
    pub fn load_inf(&mut self, rd: Reg, base: Reg, offset: i64) {
        self.emit(Instr::Load { rd, base, offset, kind: MemKind::Informing });
    }
    /// `mem[base + offset] = rs` (ordinary store)
    pub fn store(&mut self, rs: Reg, base: Reg, offset: i64) {
        self.emit(Instr::Store { rs, base, offset, kind: MemKind::Normal });
    }
    /// `mem[base + offset] = rs` (informing store)
    pub fn store_inf(&mut self, rs: Reg, base: Reg, offset: i64) {
        self.emit(Instr::Store { rs, base, offset, kind: MemKind::Informing });
    }
    /// Non-binding prefetch of `base + offset`.
    pub fn prefetch(&mut self, base: Reg, offset: i64) {
        self.emit(Instr::Prefetch { base, offset });
    }

    // ---- control ----

    /// Conditional branch to `target`.
    pub fn branch(&mut self, cond: Cond, rs: Reg, rt: Reg, target: Label) {
        self.emit_fixup(Instr::Branch { cond, rs, rt, target: 0 }, target);
    }
    /// Unconditional jump to `target`.
    pub fn jump(&mut self, target: Label) {
        self.emit_fixup(Instr::Jump { target: 0 }, target);
    }
    /// Jump-and-link to `target` (`r31` receives the return address).
    pub fn jal(&mut self, target: Label) {
        self.emit_fixup(Instr::Jal { target: 0 }, target);
    }
    /// Jump to the address in `rs`.
    pub fn jr(&mut self, rs: Reg) {
        self.emit(Instr::Jr { rs });
    }

    // ---- informing extensions ----

    /// Branch-and-link to `target` if the previous memory operation missed
    /// in the primary cache (cache-outcome condition-code scheme).
    pub fn branch_on_miss(&mut self, target: Label) {
        self.emit_fixup(Instr::BranchOnMiss { target: 0 }, target);
    }
    /// Branch-and-link to `target` if the previous memory operation missed
    /// all the way to main memory (the secondary-level condition code).
    pub fn branch_on_mem_miss(&mut self, target: Label) {
        self.emit_fixup(Instr::BranchOnMemMiss { target: 0 }, target);
    }
    /// `MHAR = target` — select the miss handler (zero disables).
    pub fn set_mhar(&mut self, target: Label) {
        self.emit_fixup(Instr::SetMhar { target: 0 }, target);
    }
    /// `MHAR = 0` — disable informing traps.
    pub fn clear_mhar(&mut self) {
        self.emit(Instr::SetMhar { target: 0 });
    }
    /// `MHAR = rs`
    pub fn set_mhar_reg(&mut self, rs: Reg) {
        self.emit(Instr::SetMharReg { rs });
    }
    /// `MHRR = rs` — redirect the handler's return (see
    /// [`Instr::SetMhrrReg`]).
    pub fn set_mhrr_reg(&mut self, rs: Reg) {
        self.emit(Instr::SetMhrrReg { rs });
    }
    /// `rd = MHRR`
    pub fn read_mhrr(&mut self, rd: Reg) {
        self.emit(Instr::ReadMhrr { rd });
    }
    /// `rd = MAR`
    pub fn read_mar(&mut self, rd: Reg) {
        self.emit(Instr::ReadMar { rd });
    }
    /// Return from a miss handler (`pc = MHRR`).
    pub fn jump_mhrr(&mut self) {
        self.emit(Instr::JumpMhrr);
    }

    // ---- misc ----

    /// No operation.
    pub fn nop(&mut self) {
        self.emit(Instr::Nop);
    }
    /// Stop the machine.
    pub fn halt(&mut self) {
        self.emit(Instr::Halt);
    }

    /// Resolves all labels and produces the final [`Program`].
    ///
    /// # Errors
    ///
    /// Returns [`AsmError::UnboundLabel`] if any referenced label was never
    /// bound, or [`AsmError::EmptyProgram`] for an empty text segment.
    pub fn assemble(mut self) -> Result<Program, AsmError> {
        if self.instrs.is_empty() {
            return Err(AsmError::EmptyProgram);
        }
        for fix in &self.fixups {
            let info = &self.labels[fix.label.0];
            let addr = info.addr.ok_or_else(|| AsmError::UnboundLabel(info.name.clone()))?;
            match &mut self.instrs[fix.instr] {
                Instr::Branch { target, .. }
                | Instr::Jump { target }
                | Instr::Jal { target }
                | Instr::BranchOnMiss { target }
                | Instr::BranchOnMemMiss { target }
                | Instr::SetMhar { target } => *target = addr,
                other => unreachable!("fixup on non-control instruction {other:?}"),
            }
        }
        let entry = match self.entry {
            Some(l) => {
                let info = &self.labels[l.0];
                info.addr.ok_or_else(|| AsmError::UnboundLabel(info.name.clone()))?
            }
            None => TEXT_BASE,
        };
        let labels = self
            .labels
            .into_iter()
            .filter_map(|l| l.addr.map(|a| (l.name, a)))
            .collect::<std::collections::BTreeMap<_, _>>();
        Ok(Program::new(self.instrs, labels, self.data, entry))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_and_backward_labels_resolve() {
        let mut a = Asm::new();
        let fwd = a.label("fwd");
        let back = a.here("back");
        a.jump(fwd);
        a.jump(back);
        a.bind(fwd).unwrap();
        a.halt();
        let p = a.assemble().unwrap();
        assert_eq!(p.fetch(TEXT_BASE), Some(Instr::Jump { target: TEXT_BASE + 8 }));
        assert_eq!(p.fetch(TEXT_BASE + 4), Some(Instr::Jump { target: TEXT_BASE }));
        assert_eq!(p.label("fwd"), Some(TEXT_BASE + 8));
        assert_eq!(p.label("back"), Some(TEXT_BASE));
    }

    #[test]
    fn unbound_label_is_error() {
        let mut a = Asm::new();
        let l = a.label("nowhere");
        a.jump(l);
        assert_eq!(a.assemble(), Err(AsmError::UnboundLabel("nowhere".into())));
    }

    #[test]
    fn duplicate_bind_is_error() {
        let mut a = Asm::new();
        let l = a.label("x");
        a.bind(l).unwrap();
        a.nop();
        assert_eq!(a.bind(l), Err(AsmError::DuplicateBind("x".into())));
    }

    #[test]
    fn empty_program_is_error() {
        assert_eq!(Asm::new().assemble(), Err(AsmError::EmptyProgram));
    }

    #[test]
    fn entry_label() {
        let mut a = Asm::new();
        a.nop();
        let main = a.here("main");
        a.halt();
        a.entry(main);
        let p = a.assemble().unwrap();
        assert_eq!(p.entry(), TEXT_BASE + 4);
    }

    #[test]
    fn set_mhar_resolves_label() {
        let mut a = Asm::new();
        let h = a.label("handler");
        a.set_mhar(h);
        a.halt();
        a.bind(h).unwrap();
        a.jump_mhrr();
        let p = a.assemble().unwrap();
        assert_eq!(p.fetch(TEXT_BASE), Some(Instr::SetMhar { target: TEXT_BASE + 8 }));
    }

    #[test]
    fn data_words() {
        let mut a = Asm::new();
        a.word(0x2000, 99);
        a.double(0x2008, 1.5);
        a.halt();
        let p = a.assemble().unwrap();
        assert_eq!(p.data().len(), 2);
        assert_eq!(p.data()[0], (0x2000, 99));
        assert_eq!(p.data()[1], (0x2008, 1.5f64.to_bits()));
    }

    #[test]
    fn next_addr_tracks_emission() {
        let mut a = Asm::new();
        assert_eq!(a.next_addr(), TEXT_BASE);
        a.nop();
        assert_eq!(a.next_addr(), TEXT_BASE + 4);
        assert_eq!(a.len(), 1);
        assert!(!a.is_empty());
    }
}
