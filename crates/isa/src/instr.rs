//! Instruction definitions.

use std::fmt;

use crate::reg::Reg;

/// Whether a memory operation participates in the informing mechanism.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MemKind {
    /// An ordinary load/store: never triggers the low-overhead miss trap.
    ///
    /// Its hit/miss outcome is still recorded in the cache-outcome condition
    /// code (in the paper's condition-code scheme *all* memory operations are
    /// informing by default).
    #[default]
    Normal,
    /// An informing load/store: on a primary data-cache miss, control
    /// transfers to the address in the MHAR (if non-zero) and the return
    /// address is deposited in the MHRR.
    Informing,
}

/// Branch conditions for [`Instr::Branch`]; comparisons are signed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cond {
    /// `rs == rt`
    Eq,
    /// `rs != rt`
    Ne,
    /// `rs < rt` (signed)
    Lt,
    /// `rs >= rt` (signed)
    Ge,
    /// `rs <= rt` (signed)
    Le,
    /// `rs > rt` (signed)
    Gt,
}

impl Cond {
    /// Evaluates the condition on two integer register values.
    pub fn eval(self, rs: u64, rt: u64) -> bool {
        let (a, b) = (rs as i64, rt as i64);
        match self {
            Cond::Eq => a == b,
            Cond::Ne => a != b,
            Cond::Lt => a < b,
            Cond::Ge => a >= b,
            Cond::Le => a <= b,
            Cond::Gt => a > b,
        }
    }
}

/// The functional-unit class an instruction executes on.
///
/// The processor models in `imo-cpu` provision functional units per class
/// (Table 1 of the paper: the out-of-order model has 2 INT, 2 FP, 1 branch
/// and 1 memory unit; the in-order model has 2 INT, 2 FP and 1 branch, with
/// memory operations sharing the integer pipes as on the Alpha 21164).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FuClass {
    /// Integer ALU operations (including integer multiply/divide).
    Int,
    /// Floating-point operations.
    Fp,
    /// Branches, jumps and the informing-control instructions.
    Branch,
    /// Loads, stores and prefetches.
    Mem,
}

/// One IRIS instruction.
///
/// Branch and jump targets hold *resolved instruction addresses* (the
/// assembler resolves labels). Instruction addresses start at
/// [`crate::program::TEXT_BASE`] and advance by 4 per instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
#[allow(missing_docs)] // operand fields use conventional names (rd/rs/rt, fd/fs/ft, base/offset)
pub enum Instr {
    // ---- integer ALU ----
    /// `rd = rs + rt`
    Add { rd: Reg, rs: Reg, rt: Reg },
    /// `rd = rs - rt`
    Sub { rd: Reg, rs: Reg, rt: Reg },
    /// `rd = rs & rt`
    And { rd: Reg, rs: Reg, rt: Reg },
    /// `rd = rs | rt`
    Or { rd: Reg, rs: Reg, rt: Reg },
    /// `rd = rs ^ rt`
    Xor { rd: Reg, rs: Reg, rt: Reg },
    /// `rd = rs << sh`
    Sll { rd: Reg, rs: Reg, sh: u8 },
    /// `rd = rs >> sh` (logical)
    Srl { rd: Reg, rs: Reg, sh: u8 },
    /// `rd = (rs < rt) ? 1 : 0` (signed)
    Slt { rd: Reg, rs: Reg, rt: Reg },
    /// `rd = rs + imm`
    Addi { rd: Reg, rs: Reg, imm: i64 },
    /// `rd = rs & imm` (immediate zero-extended from the low 16 bits)
    Andi { rd: Reg, rs: Reg, imm: u64 },
    /// `rd = imm`
    Li { rd: Reg, imm: i64 },
    /// `rd = rs * rt` (low 64 bits; 12-cycle latency in both models)
    Mul { rd: Reg, rs: Reg, rt: Reg },
    /// `rd = rs / rt` (signed; traps-free: division by zero yields 0;
    /// 76-cycle latency in both models)
    Div { rd: Reg, rs: Reg, rt: Reg },

    // ---- floating point ----
    /// `fd = fs + ft`
    Fadd { fd: Reg, fs: Reg, ft: Reg },
    /// `fd = fs - ft`
    Fsub { fd: Reg, fs: Reg, ft: Reg },
    /// `fd = fs * ft`
    Fmul { fd: Reg, fs: Reg, ft: Reg },
    /// `fd = fs / ft` (15 cycles out-of-order, 17 in-order)
    Fdiv { fd: Reg, fs: Reg, ft: Reg },
    /// `fd = sqrt(fs)` (20 cycles)
    Fsqrt { fd: Reg, fs: Reg },
    /// `fd = fs`
    Fmov { fd: Reg, fs: Reg },
    /// `fd = imm`
    Fli { fd: Reg, imm: f64 },
    /// `fd = (f64) rs` — integer to float conversion
    Cvtif { fd: Reg, rs: Reg },
    /// `rd = (i64) fs` — float to integer conversion (truncating)
    Cvtfi { rd: Reg, fs: Reg },
    /// `rd = (fs < ft) ? 1 : 0` — FP compare into an integer register
    Fcmplt { rd: Reg, fs: Reg, ft: Reg },

    // ---- memory ----
    /// Load a 64-bit word: `rd = mem[base + offset]`.
    ///
    /// `rd` may be an integer or a floating-point register (FP loads
    /// reinterpret the word's bits as an IEEE double).
    Load { rd: Reg, base: Reg, offset: i64, kind: MemKind },
    /// Store a 64-bit word: `mem[base + offset] = rs`.
    Store { rs: Reg, base: Reg, offset: i64, kind: MemKind },
    /// Non-binding prefetch of the line containing `base + offset`.
    ///
    /// Never traps and never sets the outcome condition code.
    Prefetch { base: Reg, offset: i64 },

    // ---- control ----
    /// Conditional branch on an integer comparison.
    Branch { cond: Cond, rs: Reg, rt: Reg, target: u64 },
    /// Unconditional jump.
    Jump { target: u64 },
    /// Jump and link: `r31 = pc + 4; pc = target`.
    Jal { target: u64 },
    /// Jump register: `pc = rs`.
    Jr { rs: Reg },

    // ---- informing extensions ----
    /// Branch-and-link if the *previous* memory operation (in program order)
    /// missed in the primary data cache (the cache-outcome condition-code
    /// scheme of §2.1). The return address is deposited in the MHRR so that
    /// handlers can be shared with the low-overhead-trap scheme and return
    /// with [`Instr::JumpMhrr`]. Statically predicted not-taken.
    BranchOnMiss { target: u64 },
    /// Branch-and-link if the previous memory operation missed in the
    /// *secondary* cache as well (i.e. went to main memory) — the §2.1
    /// extension of the outcome condition code to other hierarchy levels,
    /// which §4.1.3 uses to isolate secondary misses for software
    /// multithreading. Statically predicted not-taken.
    BranchOnMemMiss { target: u64 },
    /// Load the Miss Handler Address Register with an immediate code address.
    /// A zero MHAR disables informing traps.
    SetMhar { target: u64 },
    /// Load the MHAR from an integer register.
    SetMharReg { rs: Reg },
    /// Load the MHRR from an integer register. Together with
    /// [`Instr::JumpMhrr`] this lets a miss handler *redirect* its return —
    /// the primitive behind software-controlled multithreading (§4.1.3),
    /// where the handler parks the interrupted thread's resume address and
    /// resumes a different thread instead.
    SetMhrrReg { rs: Reg },
    /// `rd = MHRR` — read the miss-handler return address (used by profiling
    /// handlers to index per-reference tables, §4.1.1).
    ReadMhrr { rd: Reg },
    /// `rd = MAR` — read the data address of the most recent primary-cache
    /// miss (documented extension; see crate docs).
    ReadMar { rd: Reg },
    /// Return from a miss handler: `pc = MHRR`.
    JumpMhrr,

    // ---- misc ----
    /// No operation.
    Nop,
    /// Stop execution.
    Halt,
}

impl Instr {
    /// The destination register written by this instruction, if any.
    ///
    /// Special registers (MHAR/MHRR/MAR, the outcome condition code) are not
    /// reported here; the processor models handle them separately.
    pub fn dest(&self) -> Option<Reg> {
        use Instr::*;
        let d = match *self {
            Add { rd, .. }
            | Sub { rd, .. }
            | And { rd, .. }
            | Or { rd, .. }
            | Xor { rd, .. }
            | Sll { rd, .. }
            | Srl { rd, .. }
            | Slt { rd, .. }
            | Addi { rd, .. }
            | Andi { rd, .. }
            | Li { rd, .. }
            | Mul { rd, .. }
            | Div { rd, .. }
            | Cvtfi { rd, .. }
            | Fcmplt { rd, .. }
            | ReadMhrr { rd }
            | ReadMar { rd }
            | Load { rd, .. } => rd,
            Fadd { fd, .. }
            | Fsub { fd, .. }
            | Fmul { fd, .. }
            | Fdiv { fd, .. }
            | Fsqrt { fd, .. }
            | Fmov { fd, .. }
            | Fli { fd, .. }
            | Cvtif { fd, .. } => fd,
            Jal { .. } => Reg::LINK,
            _ => return None,
        };
        if d.is_zero() {
            None
        } else {
            Some(d)
        }
    }

    /// The source registers read by this instruction (`r0` excluded, since it
    /// is always ready).
    pub fn sources(&self) -> SourceIter {
        use Instr::*;
        let (a, b) = match *self {
            Add { rs, rt, .. }
            | Sub { rs, rt, .. }
            | And { rs, rt, .. }
            | Or { rs, rt, .. }
            | Xor { rs, rt, .. }
            | Slt { rs, rt, .. }
            | Mul { rs, rt, .. }
            | Div { rs, rt, .. } => (Some(rs), Some(rt)),
            Sll { rs, .. }
            | Srl { rs, .. }
            | Addi { rs, .. }
            | Andi { rs, .. }
            | Cvtif { rs, .. }
            | Jr { rs }
            | SetMharReg { rs }
            | SetMhrrReg { rs } => (Some(rs), None),
            Fadd { fs, ft, .. }
            | Fsub { fs, ft, .. }
            | Fmul { fs, ft, .. }
            | Fdiv { fs, ft, .. }
            | Fcmplt { fs, ft, .. } => (Some(fs), Some(ft)),
            Fsqrt { fs, .. } | Fmov { fs, .. } | Cvtfi { fs, .. } => (Some(fs), None),
            Load { base, .. } | Prefetch { base, .. } => (Some(base), None),
            Store { rs, base, .. } => (Some(base), Some(rs)),
            Branch { rs, rt, .. } => (Some(rs), Some(rt)),
            Li { .. }
            | Fli { .. }
            | Jump { .. }
            | Jal { .. }
            | BranchOnMiss { .. }
            | BranchOnMemMiss { .. }
            | SetMhar { .. }
            | ReadMhrr { .. }
            | ReadMar { .. }
            | JumpMhrr
            | Nop
            | Halt => (None, None),
        };
        SourceIter { regs: [a.filter(|r| !r.is_zero()), b.filter(|r| !r.is_zero())], next: 0 }
    }

    /// The functional-unit class this instruction occupies.
    pub fn fu_class(&self) -> FuClass {
        use Instr::*;
        match self {
            Load { .. } | Store { .. } | Prefetch { .. } => FuClass::Mem,
            Branch { .. }
            | Jump { .. }
            | Jal { .. }
            | Jr { .. }
            | BranchOnMiss { .. }
            | BranchOnMemMiss { .. }
            | JumpMhrr
            | Halt => FuClass::Branch,
            Fadd { .. }
            | Fsub { .. }
            | Fmul { .. }
            | Fdiv { .. }
            | Fsqrt { .. }
            | Fmov { .. }
            | Fli { .. }
            | Cvtif { .. }
            | Cvtfi { .. }
            | Fcmplt { .. } => FuClass::Fp,
            _ => FuClass::Int,
        }
    }

    /// Whether this is a load, store or prefetch.
    pub fn is_mem(&self) -> bool {
        matches!(self, Instr::Load { .. } | Instr::Store { .. } | Instr::Prefetch { .. })
    }

    /// Whether this is a load or store (prefetches excluded) — i.e. an
    /// operation that sets the cache-outcome condition code.
    pub fn is_data_ref(&self) -> bool {
        matches!(self, Instr::Load { .. } | Instr::Store { .. })
    }

    /// Whether this memory operation is marked informing.
    pub fn is_informing(&self) -> bool {
        matches!(
            self,
            Instr::Load { kind: MemKind::Informing, .. }
                | Instr::Store { kind: MemKind::Informing, .. }
        )
    }

    /// Whether this instruction can redirect control flow.
    pub fn is_control(&self) -> bool {
        self.fu_class() == FuClass::Branch && !matches!(self, Instr::Halt)
    }

    /// For direct control transfers, the static target address.
    pub fn static_target(&self) -> Option<u64> {
        match *self {
            Instr::Branch { target, .. }
            | Instr::Jump { target }
            | Instr::Jal { target }
            | Instr::BranchOnMiss { target }
            | Instr::BranchOnMemMiss { target } => Some(target),
            _ => None,
        }
    }
}

/// Iterator over an instruction's source registers (at most two).
#[derive(Debug, Clone)]
pub struct SourceIter {
    regs: [Option<Reg>; 2],
    next: usize,
}

impl Iterator for SourceIter {
    type Item = Reg;

    fn next(&mut self) -> Option<Reg> {
        while self.next < 2 {
            let r = self.regs[self.next];
            self.next += 1;
            if r.is_some() {
                return r;
            }
        }
        None
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Instr::*;
        match *self {
            Add { rd, rs, rt } => write!(f, "add {rd}, {rs}, {rt}"),
            Sub { rd, rs, rt } => write!(f, "sub {rd}, {rs}, {rt}"),
            And { rd, rs, rt } => write!(f, "and {rd}, {rs}, {rt}"),
            Or { rd, rs, rt } => write!(f, "or {rd}, {rs}, {rt}"),
            Xor { rd, rs, rt } => write!(f, "xor {rd}, {rs}, {rt}"),
            Sll { rd, rs, sh } => write!(f, "sll {rd}, {rs}, {sh}"),
            Srl { rd, rs, sh } => write!(f, "srl {rd}, {rs}, {sh}"),
            Slt { rd, rs, rt } => write!(f, "slt {rd}, {rs}, {rt}"),
            Addi { rd, rs, imm } => write!(f, "addi {rd}, {rs}, {imm}"),
            Andi { rd, rs, imm } => write!(f, "andi {rd}, {rs}, {imm:#x}"),
            Li { rd, imm } => write!(f, "li {rd}, {imm}"),
            Mul { rd, rs, rt } => write!(f, "mul {rd}, {rs}, {rt}"),
            Div { rd, rs, rt } => write!(f, "div {rd}, {rs}, {rt}"),
            Fadd { fd, fs, ft } => write!(f, "fadd {fd}, {fs}, {ft}"),
            Fsub { fd, fs, ft } => write!(f, "fsub {fd}, {fs}, {ft}"),
            Fmul { fd, fs, ft } => write!(f, "fmul {fd}, {fs}, {ft}"),
            Fdiv { fd, fs, ft } => write!(f, "fdiv {fd}, {fs}, {ft}"),
            Fsqrt { fd, fs } => write!(f, "fsqrt {fd}, {fs}"),
            Fmov { fd, fs } => write!(f, "fmov {fd}, {fs}"),
            Fli { fd, imm } => write!(f, "fli {fd}, {imm}"),
            Cvtif { fd, rs } => write!(f, "cvt.i.f {fd}, {rs}"),
            Cvtfi { rd, fs } => write!(f, "cvt.f.i {rd}, {fs}"),
            Fcmplt { rd, fs, ft } => write!(f, "fcmplt {rd}, {fs}, {ft}"),
            Load { rd, base, offset, kind } => {
                let m = if kind == MemKind::Informing { "ld.inf" } else { "ld" };
                write!(f, "{m} {rd}, {offset}({base})")
            }
            Store { rs, base, offset, kind } => {
                let m = if kind == MemKind::Informing { "st.inf" } else { "st" };
                write!(f, "{m} {rs}, {offset}({base})")
            }
            Prefetch { base, offset } => write!(f, "pref {offset}({base})"),
            Branch { cond, rs, rt, target } => {
                let op = match cond {
                    Cond::Eq => "beq",
                    Cond::Ne => "bne",
                    Cond::Lt => "blt",
                    Cond::Ge => "bge",
                    Cond::Le => "ble",
                    Cond::Gt => "bgt",
                };
                write!(f, "{op} {rs}, {rt}, {target:#x}")
            }
            Jump { target } => write!(f, "j {target:#x}"),
            Jal { target } => write!(f, "jal {target:#x}"),
            Jr { rs } => write!(f, "jr {rs}"),
            BranchOnMiss { target } => write!(f, "bmiss {target:#x}"),
            BranchOnMemMiss { target } => write!(f, "bmissmem {target:#x}"),
            SetMhar { target } => write!(f, "setmhar {target:#x}"),
            SetMharReg { rs } => write!(f, "setmhar {rs}"),
            SetMhrrReg { rs } => write!(f, "setmhrr {rs}"),
            ReadMhrr { rd } => write!(f, "rdmhrr {rd}"),
            ReadMar { rd } => write!(f, "rdmar {rd}"),
            JumpMhrr => write!(f, "jmhrr"),
            Nop => write!(f, "nop"),
            Halt => write!(f, "halt"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u8) -> Reg {
        Reg::int(i)
    }

    #[test]
    fn dest_of_alu() {
        let i = Instr::Add { rd: r(3), rs: r(1), rt: r(2) };
        assert_eq!(i.dest(), Some(r(3)));
    }

    #[test]
    fn dest_to_zero_is_none() {
        let i = Instr::Add { rd: Reg::ZERO, rs: r(1), rt: r(2) };
        assert_eq!(i.dest(), None);
    }

    #[test]
    fn jal_writes_link() {
        let i = Instr::Jal { target: 0x40 };
        assert_eq!(i.dest(), Some(Reg::LINK));
    }

    #[test]
    fn sources_of_store() {
        let i = Instr::Store { rs: r(5), base: r(6), offset: 8, kind: MemKind::Normal };
        let s: Vec<Reg> = i.sources().collect();
        assert_eq!(s, vec![r(6), r(5)]);
    }

    #[test]
    fn sources_skip_zero() {
        let i = Instr::Add { rd: r(1), rs: Reg::ZERO, rt: r(2) };
        let s: Vec<Reg> = i.sources().collect();
        assert_eq!(s, vec![r(2)]);
    }

    #[test]
    fn fu_classes() {
        assert_eq!(Instr::Nop.fu_class(), FuClass::Int);
        assert_eq!(Instr::JumpMhrr.fu_class(), FuClass::Branch);
        assert_eq!(Instr::Prefetch { base: r(1), offset: 0 }.fu_class(), FuClass::Mem);
        assert_eq!(
            Instr::Fadd { fd: Reg::fp(1), fs: Reg::fp(2), ft: Reg::fp(3) }.fu_class(),
            FuClass::Fp
        );
    }

    #[test]
    fn informing_flags() {
        let l = Instr::Load { rd: r(1), base: r(2), offset: 0, kind: MemKind::Informing };
        assert!(l.is_informing());
        assert!(l.is_data_ref());
        let p = Instr::Prefetch { base: r(2), offset: 0 };
        assert!(!p.is_data_ref());
        assert!(p.is_mem());
    }

    #[test]
    fn cond_eval() {
        assert!(Cond::Lt.eval(-1i64 as u64, 1));
        assert!(!Cond::Gt.eval(-1i64 as u64, 1));
        assert!(Cond::Eq.eval(7, 7));
        assert!(Cond::Ne.eval(7, 8));
        assert!(Cond::Ge.eval(8, 8));
        assert!(Cond::Le.eval(7, 8));
    }

    #[test]
    fn static_targets() {
        assert_eq!(Instr::Jump { target: 0x123 }.static_target(), Some(0x123));
        assert_eq!(Instr::Nop.static_target(), None);
    }
}
