//! Property-based tests for the assembler and functional executor, on the
//! in-tree `imo_util::check` harness (256 seeded cases per property; a
//! failure prints its reproducing `IMO_CHECK_SEED`).

use imo_util::check::{Checker, Gen};
use imo_util::{ensure, ensure_eq};

use imo_isa::exec::{AlwaysMiss, Executor, NeverMiss};
use imo_isa::{Asm, Cond, Instr, Reg};

fn alu_op(g: &mut Gen) -> Instr {
    match g.int(0u32..4) {
        0 => Instr::Add {
            rd: Reg::int(g.int(1u8..12)),
            rs: Reg::int(g.int(1u8..12)),
            rt: Reg::int(g.int(1u8..12)),
        },
        1 => Instr::Addi {
            rd: Reg::int(g.int(1u8..12)),
            rs: Reg::int(g.int(1u8..12)),
            imm: g.int(-100i64..100),
        },
        2 => Instr::Xor {
            rd: Reg::int(g.int(1u8..12)),
            rs: Reg::int(g.int(1u8..12)),
            rt: Reg::int(g.int(1u8..12)),
        },
        _ => Instr::Div {
            rd: Reg::int(g.int(1u8..12)),
            rs: Reg::int(g.int(1u8..12)),
            rt: Reg::int(g.int(1u8..12)),
        },
    }
}

/// Straight-line programs always halt, execute exactly their length, and
/// never fault — regardless of the miss oracle.
#[test]
fn straight_line_always_halts() {
    Checker::new("straight_line_always_halts").run(|g| {
        let ops = g.vec(0..100, alu_op);
        let mut a = Asm::new();
        for i in &ops {
            a.emit(*i);
        }
        a.halt();
        let p = a.assemble().expect("assembles");
        let mut e = Executor::new(&p);
        let n = e.run(&mut NeverMiss, 10_000).expect("runs");
        ensure_eq!(n, ops.len() as u64 + 1);
        ensure!(e.state().halted());
        Ok(())
    });
}

/// Execution is oracle-independent for programs without informing
/// operations or `bmiss` (the ISA's uniform-memory illusion).
#[test]
fn miss_oracle_is_invisible_without_informing_ops() {
    Checker::new("miss_oracle_is_invisible_without_informing_ops").run(|g| {
        let ops = g.vec(1..60, alu_op);
        let addrs = g.vec(1..20, |g| g.int(0u64..64));
        let mut a = Asm::new();
        a.li(Reg::int(15), 0x2000);
        for (k, i) in ops.iter().enumerate() {
            a.emit(*i);
            if k < addrs.len() {
                a.store(Reg::int(1), Reg::int(15), (addrs[k] * 8) as i64);
                a.load(Reg::int(2), Reg::int(15), (addrs[k] * 8) as i64);
            }
        }
        a.halt();
        let p = a.assemble().expect("assembles");
        let mut hit = Executor::new(&p);
        hit.run(&mut NeverMiss, 100_000).expect("runs");
        let mut miss = Executor::new(&p);
        miss.run(&mut AlwaysMiss, 100_000).expect("runs");
        for r in 1..16u8 {
            ensure_eq!(hit.state().int(Reg::int(r)), miss.state().int(Reg::int(r)));
        }
        ensure!(miss.state().miss_cc(), "cc records the last outcome");
        Ok(())
    });
}

/// Every emitted instruction round-trips through Program::fetch and has
/// a non-empty disassembly.
#[test]
fn fetch_round_trip_and_display() {
    Checker::new("fetch_round_trip_and_display").run(|g| {
        let ops = g.vec(1..50, alu_op);
        let mut a = Asm::new();
        for i in &ops {
            a.emit(*i);
        }
        a.halt();
        let p = a.assemble().expect("assembles");
        for (k, i) in ops.iter().enumerate() {
            let fetched = p.fetch(imo_isa::Program::addr_of(k)).expect("in text");
            ensure_eq!(fetched, *i);
            ensure!(!fetched.to_string().is_empty());
        }
        Ok(())
    });
}

/// Counted loops execute their body exactly `n` times (branch/label
/// resolution is correct for arbitrary placements).
#[test]
fn counted_loops_iterate_exactly() {
    Checker::new("counted_loops_iterate_exactly").run(|g| {
        let n = g.int(0i64..50);
        let pre = g.vec(0..20, alu_op);
        let mut a = Asm::new();
        for i in &pre {
            a.emit(*i);
        }
        let (ctr, lim, acc) = (Reg::int(13), Reg::int(14), Reg::int(12));
        a.li(ctr, 0);
        a.li(lim, n);
        a.li(acc, 0);
        let end = a.label("end");
        let top = a.here("top");
        // Guard for n == 0: test before increment.
        a.branch(Cond::Ge, ctr, lim, end);
        a.addi(acc, acc, 1);
        a.addi(ctr, ctr, 1);
        a.jump(top);
        a.bind(end).unwrap();
        a.halt();
        let p = a.assemble().expect("assembles");
        let mut e = Executor::new(&p);
        e.run(&mut NeverMiss, 100_000).expect("runs");
        ensure_eq!(e.state().int(acc), n as u64);
        Ok(())
    });
}
