//! Property-based tests for the assembler and functional executor.

use proptest::prelude::*;

use imo_isa::exec::{AlwaysMiss, Executor, NeverMiss};
use imo_isa::{Asm, Cond, Instr, Reg};

fn alu_op() -> impl Strategy<Value = Instr> {
    prop_oneof![
        (1u8..12, 1u8..12, 1u8..12).prop_map(|(d, s, t)| Instr::Add {
            rd: Reg::int(d),
            rs: Reg::int(s),
            rt: Reg::int(t)
        }),
        (1u8..12, 1u8..12, -100i64..100).prop_map(|(d, s, imm)| Instr::Addi {
            rd: Reg::int(d),
            rs: Reg::int(s),
            imm
        }),
        (1u8..12, 1u8..12, 1u8..12).prop_map(|(d, s, t)| Instr::Xor {
            rd: Reg::int(d),
            rs: Reg::int(s),
            rt: Reg::int(t)
        }),
        (1u8..12, 1u8..12, 1u8..12).prop_map(|(d, s, t)| Instr::Div {
            rd: Reg::int(d),
            rs: Reg::int(s),
            rt: Reg::int(t)
        }),
    ]
}

proptest! {
    /// Straight-line programs always halt, execute exactly their length, and
    /// never fault — regardless of the miss oracle.
    #[test]
    fn straight_line_always_halts(ops in proptest::collection::vec(alu_op(), 0..100)) {
        let mut a = Asm::new();
        for i in &ops {
            a.emit(*i);
        }
        a.halt();
        let p = a.assemble().expect("assembles");
        let mut e = Executor::new(&p);
        let n = e.run(&mut NeverMiss, 10_000).expect("runs");
        prop_assert_eq!(n, ops.len() as u64 + 1);
        prop_assert!(e.state().halted());
    }

    /// Execution is oracle-independent for programs without informing
    /// operations or `bmiss` (the ISA's uniform-memory illusion).
    #[test]
    fn miss_oracle_is_invisible_without_informing_ops(
        ops in proptest::collection::vec(alu_op(), 1..60),
        addrs in proptest::collection::vec(0u64..64, 1..20),
    ) {
        let mut a = Asm::new();
        a.li(Reg::int(15), 0x2000);
        for (k, i) in ops.iter().enumerate() {
            a.emit(*i);
            if k < addrs.len() {
                a.store(Reg::int(1), Reg::int(15), (addrs[k] * 8) as i64);
                a.load(Reg::int(2), Reg::int(15), (addrs[k] * 8) as i64);
            }
        }
        a.halt();
        let p = a.assemble().expect("assembles");
        let mut hit = Executor::new(&p);
        hit.run(&mut NeverMiss, 100_000).expect("runs");
        let mut miss = Executor::new(&p);
        miss.run(&mut AlwaysMiss, 100_000).expect("runs");
        for r in 1..16u8 {
            prop_assert_eq!(hit.state().int(Reg::int(r)), miss.state().int(Reg::int(r)));
        }
        prop_assert!(miss.state().miss_cc(), "cc records the last outcome");
    }

    /// Every emitted instruction round-trips through Program::fetch and has
    /// a non-empty disassembly.
    #[test]
    fn fetch_round_trip_and_display(ops in proptest::collection::vec(alu_op(), 1..50)) {
        let mut a = Asm::new();
        for i in &ops {
            a.emit(*i);
        }
        a.halt();
        let p = a.assemble().expect("assembles");
        for (k, i) in ops.iter().enumerate() {
            let fetched = p.fetch(imo_isa::Program::addr_of(k)).expect("in text");
            prop_assert_eq!(fetched, *i);
            prop_assert!(!fetched.to_string().is_empty());
        }
    }

    /// Counted loops execute their body exactly `n` times (branch/label
    /// resolution is correct for arbitrary placements).
    #[test]
    fn counted_loops_iterate_exactly(
        n in 0i64..50,
        pre in proptest::collection::vec(alu_op(), 0..20),
    ) {
        let mut a = Asm::new();
        for i in &pre {
            a.emit(*i);
        }
        let (ctr, lim, acc) = (Reg::int(13), Reg::int(14), Reg::int(12));
        a.li(ctr, 0);
        a.li(lim, n);
        a.li(acc, 0);
        let end = a.label("end");
        let top = a.here("top");
        // Guard for n == 0: test before increment.
        a.branch(Cond::Ge, ctr, lim, end);
        a.addi(acc, acc, 1);
        a.addi(ctr, ctr, 1);
        a.jump(top);
        a.bind(end).unwrap();
        a.halt();
        let p = a.assemble().expect("assembles");
        let mut e = Executor::new(&p);
        e.run(&mut NeverMiss, 100_000).expect("runs");
        prop_assert_eq!(e.state().int(acc), n as u64);
    }
}
