//! `imo-obs`: the deterministic observability layer shared by every
//! simulation crate.
//!
//! The paper's thesis is that exposing memory-system behaviour to software
//! unlocks optimization; this crate applies the same idea to the simulator
//! itself. It provides four pieces, all zero-dependency and deterministic:
//!
//! - **Typed events** ([`Event`]/[`EventKind`]): fetch/issue/graduate,
//!   cache and MSHR outcomes, informing-trap entry/return, coherence
//!   traffic, ECC and fault injections — recorded into a bounded ring
//!   buffer [`Recorder`] gated by a per-category [`CategoryMask`]. A `None`
//!   recorder (or an empty mask) costs one branch and leaves simulation
//!   results bit-identical.
//! - **Metrics** ([`MetricsRegistry`]): named counters plus fixed-bucket
//!   latency [`Histogram`]s (load-to-use, trap redirect, retry backoff)
//!   with one shared schema across `imo-cpu`, `imo-mem`, `imo-coherence`
//!   and `imo-faults`.
//! - **CPI-stack attribution** ([`CpiStack`]): every elapsed cycle is
//!   classified into exactly one of base / issue-stall / L1-miss / L2-miss
//!   / handler / coherence-wait, and the sum reconciles *exactly* with the
//!   run's cycle count — the trace-grounded reproduction of the paper's
//!   Figure 2/4 decomposition.
//! - **Miss attribution** ([`Attribution`]/[`MissProfile`], [`pattern`]):
//!   a streaming "why did this miss" analyzer folding the event stream
//!   into per-PC hot-miss tables, an exactly-reconciling compulsory /
//!   coherence / capacity / conflict classification via an online
//!   reuse-distance sketch, and a per-PC access-pattern taxonomy
//!   (fixed-stride / pointer-chase / irregular) — exported as text table,
//!   versioned JSON and a Perfetto-track twin.
//! - **Exporters** ([`chrome_trace`], [`flame_summary`]): Chrome
//!   trace-event JSON loadable in Perfetto / `chrome://tracing`, and a
//!   terminal flamegraph summary. Same recorder contents ⇒ byte-identical
//!   output.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod attrib;
pub mod cpi;
pub mod event;
pub mod export;
pub mod metrics;
pub mod pattern;
pub mod recorder;

pub use attrib::{AttribConfig, Attribution, MissClass, MissProfile, PROFILE_VERSION};
pub use cpi::{CpiCategory, CpiStack};
pub use event::{Category, CategoryMask, Event, EventKind, ServedBy};
pub use export::{chrome_trace, compare_stacks, flame_summary};
pub use metrics::{Histogram, MetricsRegistry, BUCKET_BOUNDS};
pub use pattern::{Pattern, PatternDetector};
pub use recorder::{Recorder, DEFAULT_CAPACITY};

/// Records into an optional recorder — the idiom every simulator uses so
/// the uninstrumented path stays a single branch.
#[inline]
pub fn record(obs: &mut Option<&mut Recorder>, cycle: u64, kind: EventKind) {
    if let Some(rec) = obs.as_deref_mut() {
        rec.record(cycle, kind);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optional_record_helper() {
        let mut none: Option<&mut Recorder> = None;
        record(&mut none, 1, EventKind::Issue { seq: 0 });

        let mut rec = Recorder::all();
        let mut some = Some(&mut rec);
        record(&mut some, 1, EventKind::Issue { seq: 0 });
        assert_eq!(rec.len(), 1);
    }
}
