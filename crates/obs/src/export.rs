//! Exporters: Chrome trace-event JSON (Perfetto / `chrome://tracing`
//! loadable) and a text flamegraph-style run summary.
//!
//! Exports are pure functions of a [`Recorder`]'s contents — same events,
//! metrics and CPI stack produce byte-identical output, which is what the
//! determinism tests assert.

use crate::cpi::CpiStack;
use crate::event::{Category, Event, EventKind};
use crate::recorder::Recorder;
use imo_util::json::Json;

/// Builds a Chrome trace-event document from a recorder.
///
/// Events become instant events (`ph: "i"`) with `ts` in simulated cycles
/// (1 cycle = 1 µs on the Perfetto timeline), grouped onto one track per
/// category — coherence traffic gets one track per processor instead. Each
/// used track is named via a `thread_name` metadata record. The CPI stack
/// and metrics registry ride along under `otherData` so a trace file is a
/// self-contained run record.
#[must_use]
pub fn chrome_trace(rec: &Recorder) -> Json {
    let events = rec.events();
    let mut trace_events: Vec<Json> = Vec::with_capacity(events.len() + 8);

    // Name every track that appears, in ascending tid order so output is
    // stable regardless of event order.
    let mut tids: Vec<u32> = events.iter().map(|e| e.kind.track()).collect();
    tids.sort_unstable();
    tids.dedup();
    for tid in &tids {
        trace_events.push(Json::obj([
            ("name", Json::from("thread_name")),
            ("ph", Json::from("M")),
            ("pid", Json::from(0u64)),
            ("tid", Json::from(u64::from(*tid))),
            ("args", Json::obj([("name", Json::from(track_name(*tid)))])),
        ]));
    }

    for ev in &events {
        trace_events.push(instant(ev));
    }

    Json::obj([
        ("traceEvents", Json::Arr(trace_events)),
        ("displayTimeUnit", Json::from("ms")),
        (
            "otherData",
            Json::obj([
                ("tool", Json::from("imo-obs")),
                ("mask", Json::from(rec.mask().to_string())),
                ("events_retained", Json::from(rec.len())),
                ("events_dropped", Json::from(rec.dropped())),
                ("cpi_stack", rec.cpi.to_json()),
                ("metrics", rec.metrics.to_json()),
            ]),
        ),
    ])
}

fn track_name(tid: u32) -> String {
    match Category::ALL.get(tid as usize) {
        Some(c) => c.name().to_string(),
        None => format!("proc{}", tid - 16),
    }
}

fn instant(ev: &Event) -> Json {
    Json::obj([
        ("name", Json::from(ev.kind.name())),
        ("ph", Json::from("i")),
        ("s", Json::from("t")),
        ("ts", Json::from(ev.cycle)),
        ("pid", Json::from(0u64)),
        ("tid", Json::from(u64::from(ev.kind.track()))),
        ("args", args(ev.kind)),
    ])
}

fn args(kind: EventKind) -> Json {
    match kind {
        EventKind::Fetch { seq, pc } => {
            Json::obj([("seq", Json::from(seq)), ("pc", Json::from(format!("{pc:#x}")))])
        }
        EventKind::Issue { seq } | EventKind::Graduate { seq } | EventKind::TrapReturn { seq } => {
            Json::obj([("seq", Json::from(seq))])
        }
        EventKind::DataAccess { pc, line, store, prefetch, ptr_base, .. } => Json::obj([
            ("pc", Json::from(format!("{pc:#x}"))),
            ("line", Json::from(format!("{line:#x}"))),
            ("store", Json::Bool(store)),
            ("prefetch", Json::Bool(prefetch)),
            ("ptr_base", Json::Bool(ptr_base)),
        ]),
        EventKind::InstMiss { pc } => Json::obj([("pc", Json::from(format!("{pc:#x}")))]),
        EventKind::MshrAllocate { line } | EventKind::MshrMerge { line } => {
            Json::obj([("line", Json::from(format!("{line:#x}")))])
        }
        EventKind::TrapEnter { seq, pc } => {
            Json::obj([("seq", Json::from(seq)), ("pc", Json::from(format!("{pc:#x}")))])
        }
        EventKind::HandlerFault { seq, penalty } => {
            Json::obj([("seq", Json::from(seq)), ("penalty", Json::from(penalty))])
        }
        EventKind::CohRequest { proc, line }
        | EventKind::CohDrop { proc, line }
        | EventKind::CohNack { proc, line }
        | EventKind::CohInvalidate { proc, line } => Json::obj([
            ("proc", Json::from(u64::from(proc))),
            ("line", Json::from(format!("{line:#x}"))),
        ]),
        EventKind::CohAccess { proc, line, store, served, .. } => Json::obj([
            ("proc", Json::from(u64::from(proc))),
            ("line", Json::from(format!("{line:#x}"))),
            ("store", Json::Bool(store)),
            ("served", Json::from(served.label())),
        ]),
        EventKind::CohRetry { proc, line, backoff } => Json::obj([
            ("proc", Json::from(u64::from(proc))),
            ("line", Json::from(format!("{line:#x}"))),
            ("backoff", Json::from(backoff)),
        ]),
        EventKind::EccCorrected { line } | EventKind::EccUncorrectable { line } => {
            Json::obj([("line", Json::from(format!("{line:#x}")))])
        }
    }
}

/// A text flamegraph-style summary: the CPI stack bars, event-stream
/// shape, counters, and histograms — everything a terminal user needs
/// without opening the trace in Perfetto.
#[must_use]
pub fn flame_summary(rec: &Recorder, title: &str) -> String {
    let mut out = String::new();
    out.push_str(&format!("== {title} ==\n"));
    out.push_str(&format!(
        "events: {} retained, {} dropped (mask: {})\n",
        rec.len(),
        rec.dropped(),
        rec.mask(),
    ));
    let stack = &rec.cpi;
    if stack.total() > 0 {
        out.push_str("\ncpi stack (cycles):\n");
        out.push_str(&stack.render());
    }
    if !rec.metrics.counters().is_empty() {
        out.push_str("\ncounters:\n");
        for (k, v) in rec.metrics.counters() {
            out.push_str(&format!("  {k:<32} {v}\n"));
        }
    }
    if !rec.metrics.histograms().is_empty() {
        out.push_str("\nlatency histograms:\n");
        for (k, h) in rec.metrics.histograms() {
            out.push_str(&format!("  {k:<24} {}\n", h.render()));
        }
    }
    out
}

/// Renders a [`CpiStack`] comparison between two runs (e.g. informing vs
/// baseline) as aligned per-category rows with deltas.
#[must_use]
pub fn compare_stacks(label_a: &str, a: &CpiStack, label_b: &str, b: &CpiStack) -> String {
    use crate::cpi::CpiCategory;
    let mut out = String::new();
    out.push_str(&format!("{:<14} {:>12} {:>12} {:>12}\n", "category", label_a, label_b, "delta"));
    for c in CpiCategory::ALL {
        let (va, vb) = (a.get(c), b.get(c));
        if va == 0 && vb == 0 {
            continue;
        }
        out.push_str(&format!(
            "{:<14} {:>12} {:>12} {:>+12}\n",
            c.name(),
            va,
            vb,
            vb as i64 - va as i64,
        ));
    }
    out.push_str(&format!(
        "{:<14} {:>12} {:>12} {:>+12}\n",
        "total",
        a.total(),
        b.total(),
        b.total() as i64 - a.total() as i64,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{CategoryMask, ServedBy};

    fn sample_recorder() -> Recorder {
        let mut r = Recorder::all();
        r.record(0, EventKind::Fetch { seq: 0, pc: 0x100 });
        r.record(
            2,
            EventKind::DataAccess {
                served: ServedBy::L2,
                pc: 0x104,
                addr: 0x44,
                line: 0x40,
                store: false,
                prefetch: false,
                ptr_base: false,
            },
        );
        r.record(3, EventKind::TrapEnter { seq: 0, pc: 0x100 });
        r.record(9, EventKind::CohRetry { proc: 1, line: 0x80, backoff: 4 });
        r.cpi.add(crate::cpi::CpiCategory::Base, 5);
        r.cpi.add(crate::cpi::CpiCategory::L1Miss, 5);
        r.metrics.count("cpu.loads", 1);
        r.metrics.observe("load_to_use", 12);
        r
    }

    #[test]
    fn chrome_trace_shape() {
        let j = chrome_trace(&sample_recorder());
        let events = j.get("traceEvents").unwrap().as_arr().unwrap();
        // 4 instants + 4 distinct tracks (pipeline, cache, trap, proc1).
        assert_eq!(events.len(), 8);
        let meta: Vec<&Json> =
            events.iter().filter(|e| e.get("ph").unwrap().as_str() == Some("M")).collect();
        assert_eq!(meta.len(), 4);
        assert_eq!(meta[0].get("args").unwrap().get("name").unwrap().as_str(), Some("pipeline"));
        let inst: Vec<&Json> =
            events.iter().filter(|e| e.get("ph").unwrap().as_str() == Some("i")).collect();
        assert_eq!(inst[0].get("name").unwrap().as_str(), Some("fetch"));
        assert_eq!(inst[1].get("ts").unwrap().as_f64(), Some(2.0));
        assert_eq!(inst[3].get("args").unwrap().get("backoff").unwrap().as_f64(), Some(4.0));
        let other = j.get("otherData").unwrap();
        assert_eq!(other.get("cpi_stack").unwrap().get("total").unwrap().as_f64(), Some(10.0));
    }

    #[test]
    fn chrome_trace_reparses_and_is_deterministic() {
        let a = chrome_trace(&sample_recorder()).pretty();
        let b = chrome_trace(&sample_recorder()).pretty();
        assert_eq!(a, b);
        assert!(imo_util::json::parse(&a).is_ok());
    }

    #[test]
    fn proc_tracks_are_named() {
        let j = chrome_trace(&sample_recorder());
        let events = j.get("traceEvents").unwrap().as_arr().unwrap();
        let proc_meta = events
            .iter()
            .find(|e| {
                e.get("ph").unwrap().as_str() == Some("M")
                    && e.get("tid").unwrap().as_f64() == Some(17.0)
            })
            .unwrap();
        assert_eq!(proc_meta.get("args").unwrap().get("name").unwrap().as_str(), Some("proc1"));
    }

    #[test]
    fn flame_summary_mentions_everything() {
        let s = flame_summary(&sample_recorder(), "demo");
        assert!(s.contains("== demo =="));
        assert!(s.contains("4 retained"));
        assert!(s.contains("base"));
        assert!(s.contains("cpu.loads"));
        assert!(s.contains("load_to_use"));
    }

    #[test]
    fn empty_recorder_summary_is_small() {
        let r = Recorder::new(CategoryMask::NONE);
        let s = flame_summary(&r, "empty");
        assert!(s.contains("0 retained"));
        assert!(!s.contains("cpi stack"));
    }

    #[test]
    fn compare_stacks_deltas() {
        let a = CpiStack { base: 10, l1_miss: 4, ..CpiStack::default() };
        let b = CpiStack { base: 10, l1_miss: 2, handler: 3, ..CpiStack::default() };
        let s = compare_stacks("off", &a, "on", &b);
        assert!(s.contains("l1_miss"));
        assert!(s.contains("-2"));
        assert!(s.contains("+3"));
        assert!(s.lines().last().unwrap().starts_with("total"));
    }
}
