//! Streaming "why did this miss" attribution over the event stream.
//!
//! An [`Attribution`] analyzer folds [`EventKind::DataAccess`] /
//! [`EventKind::CohAccess`] / [`EventKind::CohInvalidate`] events — fed to
//! it by the [`crate::Recorder`] *before* the category mask and ring
//! buffer, so masking and eviction can never skew it — into:
//!
//! - a per-PC hot-miss table with reuse-distance histograms and an
//!   access-pattern taxonomy ([`crate::pattern`]),
//! - an exact four-way miss classification (compulsory / coherence /
//!   capacity / conflict) computed from an online reuse-distance sketch
//!   (a Fenwick tree over a circular window of recent accesses) plus
//!   per-set pressure tracking,
//! - a versioned [`MissProfile`] emitted as ordered JSON, an aligned text
//!   [`imo_util::Table`], and a Perfetto-loadable Chrome-trace twin.
//!
//! **Reconciliation invariant:** every demand miss event is classified into
//! exactly one class, so the class totals sum *exactly* to the cache's own
//! demand-miss counters. Prefetch probes touch the sketch (they change
//! which lines are warm) but are never classified and never counted as
//! demand traffic. The analyzer is strictly passive: it never feeds back
//! into simulation state.
//!
//! Classification rules, applied in order to each demand miss:
//!
//! 1. first-ever access to the line → **compulsory**;
//! 2. the line was invalidated by the coherence protocol since this
//!    stream last touched it → **coherence**;
//! 3. reuse distance (distinct lines touched since the last access) is at
//!    least the L1 capacity in lines, or the last access aged out of the
//!    sketch window → **capacity**;
//! 4. otherwise (the line was recently reused but still missed — it lost
//!    its set to competing lines) → **conflict**.

use std::collections::BTreeMap;

use imo_util::{Json, Table};

use crate::event::{EventKind, ServedBy};
use crate::pattern::{Pattern, PatternDetector};

/// Version stamp carried by every [`MissProfile`] JSON document.
pub const PROFILE_VERSION: u64 = 1;

/// Default reuse-sketch window (accesses) when a config does not derive one
/// from cache geometry.
pub const DEFAULT_WINDOW: usize = 1 << 15;

/// Reuse-distance histogram bucket count: `{0, 1, 2-3, 4-7, …, >=2^15}`.
pub const DIST_BUCKETS: usize = 17;

/// Why a demand reference missed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MissClass {
    /// First-ever access to the line (cold miss).
    Compulsory,
    /// The line was invalidated by the coherence protocol since the last
    /// access from this stream.
    Coherence,
    /// The reuse distance exceeded the cache capacity in lines (or aged
    /// out of the sketch window entirely).
    Capacity,
    /// Reused recently yet missed: evicted by set conflict.
    Conflict,
}

impl MissClass {
    /// All classes, in profile order.
    pub const ALL: [MissClass; 4] =
        [MissClass::Compulsory, MissClass::Coherence, MissClass::Capacity, MissClass::Conflict];

    /// Stable lower-case name used in JSON profiles and reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            MissClass::Compulsory => "compulsory",
            MissClass::Coherence => "coherence",
            MissClass::Capacity => "capacity",
            MissClass::Conflict => "conflict",
        }
    }

    fn idx(self) -> usize {
        self as usize
    }
}

/// Analyzer geometry and reporting knobs, derived from the L1 D-cache the
/// stream being attributed actually probes.
#[derive(Debug, Clone)]
pub struct AttribConfig {
    /// L1 capacity in lines — the capacity/conflict threshold.
    pub l1_lines: u64,
    /// L1 set count for set-pressure tracking.
    pub l1_sets: u64,
    /// Line size in bytes (maps addresses to sets).
    pub line_bytes: u64,
    /// Reuse-sketch window in accesses; older last-touches age out and
    /// classify as capacity.
    pub window: usize,
    /// How many hot PCs the emitted profile retains.
    pub top_pcs: usize,
}

impl AttribConfig {
    /// Derives a config from L1 D-cache geometry: the sketch window is
    /// sized at 16× the capacity in lines (clamped to `[1024, 65536]`) so
    /// capacity misses are measurable without unbounded state.
    #[must_use]
    pub fn for_l1(size_bytes: u64, assoc: u64, line_bytes: u64) -> AttribConfig {
        let line_bytes = line_bytes.max(1);
        let assoc = assoc.max(1);
        let l1_lines = (size_bytes / line_bytes).max(1);
        let window =
            usize::try_from(l1_lines.saturating_mul(16)).unwrap_or(usize::MAX).clamp(1024, 1 << 16);
        AttribConfig {
            l1_lines,
            l1_sets: (l1_lines / assoc).max(1),
            line_bytes,
            window: window.next_power_of_two(),
            top_pcs: 32,
        }
    }
}

impl Default for AttribConfig {
    fn default() -> AttribConfig {
        AttribConfig {
            l1_lines: 256,
            l1_sets: 256,
            line_bytes: 32,
            window: DEFAULT_WINDOW,
            top_pcs: 32,
        }
    }
}

/// Reuse information for one access, reported by the sketch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Reuse {
    /// First-ever access to this line.
    First,
    /// Distinct lines touched since the previous access to this line.
    Within(u64),
    /// The previous access fell out of the sketch window.
    AgedOut,
}

/// Point-update / prefix-sum tree over the circular window slots.
#[derive(Debug, Clone)]
struct Fenwick {
    tree: Vec<i64>,
}

impl Fenwick {
    fn new(n: usize) -> Fenwick {
        Fenwick { tree: vec![0; n + 1] }
    }

    fn add(&mut self, mut i: usize, v: i64) {
        i += 1;
        while i < self.tree.len() {
            self.tree[i] += v;
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of slots `[0, i)`.
    fn prefix(&self, mut i: usize) -> i64 {
        let mut s = 0;
        while i > 0 {
            s += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        s
    }

    /// Sum of slots `[a, b)`.
    fn range(&self, a: usize, b: usize) -> i64 {
        if b <= a {
            0
        } else {
            self.prefix(b) - self.prefix(a)
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct LineInfo {
    /// Global access index of the last touch (valid only when `seen`).
    last_t: u64,
    /// Whether the line has ever been touched by this stream.
    seen: bool,
    /// Whether the coherence protocol invalidated it since the last touch.
    invalidated: bool,
}

/// Online reuse-distance sketch: exact distinct-lines-since-last-access
/// within a circular window of the most recent `window` accesses, O(log
/// window) per access, bounded marker state.
#[derive(Debug, Clone)]
struct ReuseSketch {
    window: usize,
    /// Global access counter.
    t: u64,
    /// One potential marker per window slot: marks the *most recent*
    /// position of some line.
    fen: Fenwick,
    slot_line: Vec<Option<u64>>,
    lines: BTreeMap<u64, LineInfo>,
}

impl ReuseSketch {
    fn new(window: usize) -> ReuseSketch {
        let window = window.max(2);
        ReuseSketch {
            window,
            t: 0,
            fen: Fenwick::new(window),
            slot_line: vec![None; window],
            lines: BTreeMap::new(),
        }
    }

    /// Marks a coherence invalidation of `line`.
    fn invalidate(&mut self, line: u64) {
        let info = self.lines.entry(line).or_insert(LineInfo {
            last_t: 0,
            seen: false,
            invalidated: false,
        });
        info.invalidated = true;
    }

    /// Counts markers for positions strictly between `lt` and `t` on the
    /// circular slot array (range length is < window by construction).
    fn marks_between(&self, lt: u64, t: u64) -> u64 {
        let len = (t - lt - 1) as usize;
        if len == 0 {
            return 0;
        }
        let a = ((lt + 1) % self.window as u64) as usize;
        let count = if a + len <= self.window {
            self.fen.range(a, a + len)
        } else {
            self.fen.range(a, self.window) + self.fen.range(0, a + len - self.window)
        };
        count as u64
    }

    /// Advances the stream by one access to `line`; returns the reuse
    /// classification for this access and whether the line had been
    /// invalidated since its previous touch (flag is consumed).
    fn touch(&mut self, line: u64) -> (Reuse, bool) {
        let t = self.t;
        let w = self.window as u64;
        let slot = (t % w) as usize;
        // Retire the marker whose slot this access reuses (the line last
        // touched exactly `window` accesses ago).
        if self.slot_line[slot].take().is_some() {
            self.fen.add(slot, -1);
        }
        let prev = *self.lines.entry(line).or_insert(LineInfo {
            last_t: 0,
            seen: false,
            invalidated: false,
        });
        let reuse = if !prev.seen {
            Reuse::First
        } else if t - prev.last_t > w {
            Reuse::AgedOut
        } else {
            Reuse::Within(self.marks_between(prev.last_t, t))
        };
        // Move this line's marker to the current slot.
        if prev.seen && t - prev.last_t < w {
            let old = (prev.last_t % w) as usize;
            if self.slot_line[old] == Some(line) {
                self.slot_line[old] = None;
                self.fen.add(old, -1);
            }
        }
        self.slot_line[slot] = Some(line);
        self.fen.add(slot, 1);
        self.lines.insert(line, LineInfo { last_t: t, seen: true, invalidated: false });
        self.t += 1;
        (reuse, prev.invalidated)
    }
}

fn classify(reuse: Reuse, invalidated: bool, l1_lines: u64) -> MissClass {
    match reuse {
        Reuse::First => MissClass::Compulsory,
        _ if invalidated => MissClass::Coherence,
        Reuse::AgedOut => MissClass::Capacity,
        Reuse::Within(d) if d >= l1_lines => MissClass::Capacity,
        Reuse::Within(_) => MissClass::Conflict,
    }
}

/// Power-of-two reuse-distance histogram: buckets `0, 1, 2-3, 4-7, …`.
#[derive(Debug, Clone)]
struct DistHist {
    buckets: [u64; DIST_BUCKETS],
}

impl DistHist {
    fn new() -> DistHist {
        DistHist { buckets: [0; DIST_BUCKETS] }
    }

    fn record(&mut self, d: u64) {
        let b = if d == 0 { 0 } else { (64 - d.leading_zeros()) as usize };
        self.buckets[b.min(DIST_BUCKETS - 1)] += 1;
    }
}

/// One attribution stream: a reuse sketch plus class/set accounting. The
/// CPU hierarchy is one stream; each coherence processor is another.
#[derive(Debug, Clone)]
struct Stream {
    sketch: ReuseSketch,
    classes: [u64; 4],
    demand_refs: u64,
    demand_misses: u64,
    /// Demand references that missed both levels (served by memory).
    mem_served: u64,
    set_refs: Vec<u64>,
    set_misses: Vec<u64>,
}

impl Stream {
    fn new(cfg: &AttribConfig) -> Stream {
        let sets = usize::try_from(cfg.l1_sets).unwrap_or(1).max(1);
        Stream {
            sketch: ReuseSketch::new(cfg.window),
            classes: [0; 4],
            demand_refs: 0,
            demand_misses: 0,
            mem_served: 0,
            set_refs: vec![0; sets],
            set_misses: vec![0; sets],
        }
    }

    fn set_of(&self, line: u64, cfg: &AttribConfig) -> usize {
        ((line / cfg.line_bytes) % cfg.l1_sets.max(1)) as usize
    }

    /// Feeds one demand reference; returns the miss class when it missed.
    fn demand(
        &mut self,
        line: u64,
        served: ServedBy,
        cfg: &AttribConfig,
    ) -> (Option<MissClass>, Reuse) {
        self.demand_refs += 1;
        let set = self.set_of(line, cfg);
        self.set_refs[set] += 1;
        let (reuse, invalidated) = self.sketch.touch(line);
        if served == ServedBy::L1 {
            return (None, reuse);
        }
        self.demand_misses += 1;
        self.set_misses[set] += 1;
        if served == ServedBy::Memory {
            self.mem_served += 1;
        }
        let class = classify(reuse, invalidated, cfg.l1_lines);
        self.classes[class.idx()] += 1;
        (Some(class), reuse)
    }

    fn classified_total(&self) -> u64 {
        self.classes.iter().sum()
    }
}

/// Per-PC accounting feeding the hot-miss table.
#[derive(Debug, Clone)]
struct PcStats {
    refs: u64,
    misses: u64,
    stores: u64,
    classes: [u64; 4],
    l2_served: u64,
    mem_served: u64,
    dist: DistHist,
    pattern: PatternDetector,
}

impl PcStats {
    fn new() -> PcStats {
        PcStats {
            refs: 0,
            misses: 0,
            stores: 0,
            classes: [0; 4],
            l2_served: 0,
            mem_served: 0,
            dist: DistHist::new(),
            pattern: PatternDetector::new(),
        }
    }
}

/// The streaming analyzer. Owned by a [`crate::Recorder`] and fed every
/// event before masking, or driven directly via [`Attribution::on_event`].
#[derive(Debug, Clone)]
pub struct Attribution {
    cfg: AttribConfig,
    cpu: Stream,
    pcs: BTreeMap<u64, PcStats>,
    coh: BTreeMap<u32, Stream>,
    prefetch_probes: u64,
}

impl Attribution {
    /// A fresh analyzer for the given geometry.
    #[must_use]
    pub fn new(cfg: AttribConfig) -> Attribution {
        let cpu = Stream::new(&cfg);
        Attribution { cfg, cpu, pcs: BTreeMap::new(), coh: BTreeMap::new(), prefetch_probes: 0 }
    }

    /// The analyzer's geometry.
    #[must_use]
    pub fn config(&self) -> &AttribConfig {
        &self.cfg
    }

    /// Folds one event. Non-memory events are ignored in O(1).
    #[inline]
    pub fn on_event(&mut self, kind: &EventKind) {
        match *kind {
            EventKind::DataAccess { served, pc, addr, line, store, prefetch, ptr_base } => {
                if prefetch {
                    // Prefetches warm the sketch (they change which lines
                    // are resident) but are not demand traffic: never
                    // classified, never reconciled.
                    self.prefetch_probes += 1;
                    self.cpu.sketch.touch(line);
                    return;
                }
                let (class, reuse) = self.cpu.demand(line, served, &self.cfg);
                let pc_stats = self.pcs.entry(pc).or_insert_with(PcStats::new);
                pc_stats.refs += 1;
                if store {
                    pc_stats.stores += 1;
                }
                pc_stats.pattern.observe(addr, ptr_base);
                if let Some(class) = class {
                    pc_stats.misses += 1;
                    pc_stats.classes[class.idx()] += 1;
                    match served {
                        ServedBy::L2 => pc_stats.l2_served += 1,
                        ServedBy::Memory => pc_stats.mem_served += 1,
                        ServedBy::L1 => {}
                    }
                    if let Reuse::Within(d) = reuse {
                        pc_stats.dist.record(d);
                    }
                }
            }
            EventKind::CohAccess { proc, line, served, .. } => {
                let cfg = &self.cfg;
                let stream = self.coh.entry(proc).or_insert_with(|| Stream::new(cfg));
                stream.demand(line, served, cfg);
            }
            EventKind::CohInvalidate { proc, line } => {
                let cfg = &self.cfg;
                let stream = self.coh.entry(proc).or_insert_with(|| Stream::new(cfg));
                stream.sketch.invalidate(line);
            }
            _ => {}
        }
    }

    /// Demand references seen on the CPU stream.
    #[must_use]
    pub fn cpu_demand_refs(&self) -> u64 {
        self.cpu.demand_refs
    }

    /// Demand misses seen (and classified) on the CPU stream.
    #[must_use]
    pub fn cpu_demand_misses(&self) -> u64 {
        self.cpu.demand_misses
    }

    /// Demand references served by memory (missed both levels).
    #[must_use]
    pub fn cpu_l2_misses(&self) -> u64 {
        self.cpu.mem_served
    }

    /// CPU per-class totals in [`MissClass::ALL`] order.
    #[must_use]
    pub fn cpu_classes(&self) -> [u64; 4] {
        self.cpu.classes
    }

    /// Sum of the CPU per-class totals — must equal
    /// [`Attribution::cpu_demand_misses`] (and the cache's own counter).
    #[must_use]
    pub fn cpu_classified_total(&self) -> u64 {
        self.cpu.classified_total()
    }

    /// Prefetch probes seen (excluded from demand accounting).
    #[must_use]
    pub fn prefetch_probes(&self) -> u64 {
        self.prefetch_probes
    }

    /// Total L1 misses across all coherence processor streams.
    #[must_use]
    pub fn coh_l1_misses(&self) -> u64 {
        self.coh.values().map(|s| s.demand_misses).sum()
    }

    /// Total L2 misses (memory-served) across all coherence streams.
    #[must_use]
    pub fn coh_l2_misses(&self) -> u64 {
        self.coh.values().map(|s| s.mem_served).sum()
    }

    /// Sum of per-class totals across all coherence streams.
    #[must_use]
    pub fn coh_classified_total(&self) -> u64 {
        self.coh.values().map(Stream::classified_total).sum()
    }

    /// Aggregate per-class totals across all coherence streams.
    #[must_use]
    pub fn coh_classes(&self) -> [u64; 4] {
        let mut out = [0u64; 4];
        for s in self.coh.values() {
            for (o, c) in out.iter_mut().zip(s.classes.iter()) {
                *o += c;
            }
        }
        out
    }

    /// Exact reconciliation against the simulator's own counters: every
    /// demand miss classified exactly once.
    #[must_use]
    pub fn reconciles_cpu(&self, l1d_misses: u64, l2_misses: u64) -> bool {
        self.cpu.demand_misses == l1d_misses
            && self.cpu.classified_total() == l1d_misses
            && self.cpu.mem_served == l2_misses
    }

    /// Exact reconciliation against the coherence simulator's counters.
    #[must_use]
    pub fn reconciles_coh(&self, l1_misses: u64, l2_misses: u64) -> bool {
        self.coh_l1_misses() == l1_misses
            && self.coh_classified_total() == l1_misses
            && self.coh_l2_misses() == l2_misses
    }

    /// Builds the versioned profile snapshot, hot PCs ranked by misses
    /// (then PC for determinism) and truncated to `cfg.top_pcs`.
    #[must_use]
    pub fn profile(&self, label: &str) -> MissProfile {
        let mut pcs: Vec<PcProfile> = self
            .pcs
            .iter()
            .map(|(&pc, s)| PcProfile {
                pc,
                refs: s.refs,
                misses: s.misses,
                stores: s.stores,
                classes: s.classes,
                l2_served: s.l2_served,
                mem_served: s.mem_served,
                pattern: s.pattern.classify(),
                dist: s.dist.buckets.to_vec(),
            })
            .collect();
        pcs.sort_by(|a, b| b.misses.cmp(&a.misses).then(a.pc.cmp(&b.pc)));
        pcs.truncate(self.cfg.top_pcs);

        let mut hot_sets: Vec<(u64, u64, u64)> = self
            .cpu
            .set_misses
            .iter()
            .enumerate()
            .filter(|(_, &m)| m > 0)
            .map(|(i, &m)| (i as u64, self.cpu.set_refs[i], m))
            .collect();
        hot_sets.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(&b.0)));
        hot_sets.truncate(8);

        MissProfile {
            version: PROFILE_VERSION,
            label: label.to_string(),
            l1_lines: self.cfg.l1_lines,
            window: self.cfg.window as u64,
            demand_refs: self.cpu.demand_refs,
            demand_misses: self.cpu.demand_misses,
            mem_served: self.cpu.mem_served,
            prefetch_probes: self.prefetch_probes,
            classes: self.cpu.classes,
            pcs,
            hot_sets,
            coh: self
                .coh
                .iter()
                .map(|(&proc, s)| CohProfile {
                    proc,
                    demand_refs: s.demand_refs,
                    demand_misses: s.demand_misses,
                    mem_served: s.mem_served,
                    classes: s.classes,
                })
                .collect(),
        }
    }
}

/// One hot PC's row in a [`MissProfile`].
#[derive(Debug, Clone)]
pub struct PcProfile {
    /// Static instruction address.
    pub pc: u64,
    /// Demand references issued by this PC.
    pub refs: u64,
    /// Demand misses.
    pub misses: u64,
    /// Store references.
    pub stores: u64,
    /// Per-class miss totals in [`MissClass::ALL`] order.
    pub classes: [u64; 4],
    /// Misses served by the L2.
    pub l2_served: u64,
    /// Misses served by memory.
    pub mem_served: u64,
    /// Classified access pattern.
    pub pattern: Pattern,
    /// Reuse-distance histogram buckets (`0, 1, 2-3, 4-7, …`).
    pub dist: Vec<u64>,
}

/// One coherence processor's classification row.
#[derive(Debug, Clone)]
pub struct CohProfile {
    /// Processor index.
    pub proc: u32,
    /// Demand references driven through this processor's private caches.
    pub demand_refs: u64,
    /// Private-L1 misses.
    pub demand_misses: u64,
    /// References that also missed the private L2.
    pub mem_served: u64,
    /// Per-class miss totals in [`MissClass::ALL`] order.
    pub classes: [u64; 4],
}

/// A versioned point-in-time attribution snapshot with three export twins:
/// ordered JSON, an aligned text table, and a Perfetto-loadable trace.
#[derive(Debug, Clone)]
pub struct MissProfile {
    /// Schema version ([`PROFILE_VERSION`]).
    pub version: u64,
    /// Free-form source label (machine / workload / scheme).
    pub label: String,
    /// L1 capacity (lines) the classification used.
    pub l1_lines: u64,
    /// Reuse-sketch window (accesses).
    pub window: u64,
    /// CPU-stream demand references.
    pub demand_refs: u64,
    /// CPU-stream demand misses (== sum of `classes`).
    pub demand_misses: u64,
    /// CPU-stream references served by memory.
    pub mem_served: u64,
    /// Prefetch probes observed (never classified).
    pub prefetch_probes: u64,
    /// CPU per-class totals in [`MissClass::ALL`] order.
    pub classes: [u64; 4],
    /// Hot PCs, ranked by misses descending then PC ascending.
    pub pcs: Vec<PcProfile>,
    /// Hottest cache sets as `(set, refs, misses)`, ranked by misses.
    pub hot_sets: Vec<(u64, u64, u64)>,
    /// Per-processor coherence rows (empty for uniprocessor runs).
    pub coh: Vec<CohProfile>,
}

fn n(v: u64) -> Json {
    Json::Num(v as f64)
}

fn classes_json(classes: &[u64; 4]) -> Json {
    Json::obj(MissClass::ALL.iter().map(|c| (c.name(), n(classes[c.idx()]))))
}

impl MissProfile {
    /// The ordered JSON document (stable key order, deterministic).
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("version", n(self.version)),
            ("label", Json::Str(self.label.clone())),
            ("l1_lines", n(self.l1_lines)),
            ("window", n(self.window)),
            ("demand_refs", n(self.demand_refs)),
            ("demand_misses", n(self.demand_misses)),
            ("mem_served", n(self.mem_served)),
            ("prefetch_probes", n(self.prefetch_probes)),
            ("classes", classes_json(&self.classes)),
            (
                "pcs",
                Json::arr(self.pcs.iter().map(|p| {
                    Json::obj([
                        ("pc", Json::Str(format!("{:#x}", p.pc))),
                        ("refs", n(p.refs)),
                        ("misses", n(p.misses)),
                        ("stores", n(p.stores)),
                        ("classes", classes_json(&p.classes)),
                        ("l2_served", n(p.l2_served)),
                        ("mem_served", n(p.mem_served)),
                        ("pattern", Json::Str(p.pattern.tag().to_string())),
                        (
                            "stride",
                            match p.pattern.stride() {
                                Some(s) => Json::Num(s as f64),
                                None => Json::Null,
                            },
                        ),
                        ("reuse_hist", Json::arr(p.dist.iter().map(|&b| n(b)))),
                    ])
                })),
            ),
            (
                "hot_sets",
                Json::arr(self.hot_sets.iter().map(|&(set, refs, misses)| {
                    Json::obj([("set", n(set)), ("refs", n(refs)), ("misses", n(misses))])
                })),
            ),
            (
                "coherence",
                Json::arr(self.coh.iter().map(|c| {
                    Json::obj([
                        ("proc", n(u64::from(c.proc))),
                        ("demand_refs", n(c.demand_refs)),
                        ("demand_misses", n(c.demand_misses)),
                        ("mem_served", n(c.mem_served)),
                        ("classes", classes_json(&c.classes)),
                    ])
                })),
            ),
        ])
    }

    /// The aligned hot-miss text table.
    #[must_use]
    pub fn table(&self) -> Table {
        let mut t = Table::new([
            "pc",
            "refs",
            "misses",
            "miss%",
            "compulsory",
            "coherence",
            "capacity",
            "conflict",
            "pattern",
        ]);
        for p in &self.pcs {
            let pct = if p.refs == 0 { 0.0 } else { 100.0 * p.misses as f64 / p.refs as f64 };
            t.row([
                format!("{:#x}", p.pc),
                p.refs.to_string(),
                p.misses.to_string(),
                format!("{pct:.1}"),
                p.classes[0].to_string(),
                p.classes[1].to_string(),
                p.classes[2].to_string(),
                p.classes[3].to_string(),
                p.pattern.to_string(),
            ]);
        }
        t
    }

    /// The Perfetto / `chrome://tracing` export twin: one counter sample
    /// per miss class plus one instant event per hot PC on a dedicated
    /// "miss attribution" track. Same profile ⇒ byte-identical output.
    #[must_use]
    pub fn chrome_trace(&self) -> String {
        const TRACK: u64 = 40;
        let mut events = vec![Json::obj([
            ("name", Json::Str("thread_name".to_string())),
            ("ph", Json::Str("M".to_string())),
            ("pid", n(1)),
            ("tid", n(TRACK)),
            ("args", Json::obj([("name", Json::Str(format!("miss attribution: {}", self.label)))])),
        ])];
        events.push(Json::obj([
            ("name", Json::Str("miss classes".to_string())),
            ("ph", Json::Str("C".to_string())),
            ("ts", n(0)),
            ("pid", n(1)),
            ("tid", n(TRACK)),
            ("args", classes_json(&self.classes)),
        ]));
        for (rank, p) in self.pcs.iter().enumerate() {
            events.push(Json::obj([
                ("name", Json::Str(format!("{:#x} {}", p.pc, p.pattern))),
                ("ph", Json::Str("i".to_string())),
                ("s", Json::Str("t".to_string())),
                ("ts", n(rank as u64 + 1)),
                ("pid", n(1)),
                ("tid", n(TRACK)),
                (
                    "args",
                    Json::obj([
                        ("refs", n(p.refs)),
                        ("misses", n(p.misses)),
                        ("classes", classes_json(&p.classes)),
                    ]),
                ),
            ]));
        }
        Json::obj([("traceEvents", Json::arr(events))]).compact()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(l1_lines: u64, window: usize) -> AttribConfig {
        AttribConfig { l1_lines, l1_sets: l1_lines, line_bytes: 32, window, top_pcs: 8 }
    }

    fn access(pc: u64, addr: u64, served: ServedBy) -> EventKind {
        EventKind::DataAccess {
            served,
            pc,
            addr,
            line: addr & !31,
            store: false,
            prefetch: false,
            ptr_base: false,
        }
    }

    #[test]
    fn first_touch_is_compulsory() {
        let mut a = Attribution::new(cfg(4, 16));
        a.on_event(&access(0x100, 0x1000, ServedBy::Memory));
        assert_eq!(a.cpu_classes(), [1, 0, 0, 0]);
        assert!(a.reconciles_cpu(1, 1));
    }

    #[test]
    fn short_reuse_miss_is_conflict_long_reuse_is_capacity() {
        let mut a = Attribution::new(cfg(2, 64));
        // Touch A, then one distinct line, then A again (distance 1 < 2).
        a.on_event(&access(1, 0x1000, ServedBy::Memory));
        a.on_event(&access(1, 0x2000, ServedBy::Memory));
        a.on_event(&access(1, 0x1000, ServedBy::L2)); // conflict
        assert_eq!(a.cpu_classes(), [2, 0, 0, 1]);
        // Now B with 3 distinct lines in between (distance 3 >= 2).
        a.on_event(&access(1, 0x3000, ServedBy::Memory));
        a.on_event(&access(1, 0x4000, ServedBy::Memory));
        a.on_event(&access(1, 0x5000, ServedBy::Memory));
        a.on_event(&access(1, 0x2000, ServedBy::L2)); // capacity
        assert_eq!(a.cpu_classes(), [5, 0, 1, 1]);
        assert!(a.reconciles_cpu(7, 5));
    }

    #[test]
    fn aged_out_reuse_is_capacity() {
        let mut a = Attribution::new(cfg(64, 4));
        a.on_event(&access(1, 0x1000, ServedBy::Memory));
        // 5 > window accesses to other lines age the entry out.
        for i in 0..5u64 {
            a.on_event(&access(1, 0x2000 + i * 32, ServedBy::Memory));
        }
        a.on_event(&access(1, 0x1000, ServedBy::L2));
        assert_eq!(a.cpu_classes()[2], 1, "aged-out reuse must classify capacity");
        assert!(a.reconciles_cpu(7, 6));
    }

    #[test]
    fn hits_are_not_classified() {
        let mut a = Attribution::new(cfg(4, 16));
        a.on_event(&access(1, 0x1000, ServedBy::Memory));
        a.on_event(&access(1, 0x1000, ServedBy::L1));
        a.on_event(&access(1, 0x1000, ServedBy::L1));
        assert_eq!(a.cpu_demand_refs(), 3);
        assert_eq!(a.cpu_demand_misses(), 1);
        assert_eq!(a.cpu_classified_total(), 1);
    }

    #[test]
    fn prefetch_probes_never_classify_but_warm_the_sketch() {
        let mut a = Attribution::new(cfg(4, 16));
        a.on_event(&EventKind::DataAccess {
            served: ServedBy::Memory,
            pc: 0x10,
            addr: 0x1000,
            line: 0x1000,
            store: false,
            prefetch: true,
            ptr_base: false,
        });
        assert_eq!(a.prefetch_probes(), 1);
        assert_eq!(a.cpu_demand_refs(), 0);
        assert_eq!(a.cpu_classified_total(), 0);
        // The demand access after the prefetch is NOT compulsory: the
        // sketch saw the line.
        a.on_event(&access(0x10, 0x1000, ServedBy::L2));
        assert_eq!(a.cpu_classes(), [0, 0, 0, 1]);
    }

    #[test]
    fn invalidation_reclassifies_next_miss_as_coherence() {
        let mut a = Attribution::new(cfg(4, 16));
        a.on_event(&EventKind::CohAccess {
            proc: 2,
            addr: 0x1000,
            line: 0x1000,
            store: false,
            served: ServedBy::L2,
        });
        a.on_event(&EventKind::CohInvalidate { proc: 2, line: 0x1000 });
        a.on_event(&EventKind::CohAccess {
            proc: 2,
            addr: 0x1000,
            line: 0x1000,
            store: false,
            served: ServedBy::L2,
        });
        assert_eq!(a.coh_classes(), [1, 1, 0, 0]);
        assert!(a.reconciles_coh(2, 0));
        // A later miss with no new invalidation is not coherence.
        a.on_event(&EventKind::CohAccess {
            proc: 2,
            addr: 0x1000,
            line: 0x1000,
            store: false,
            served: ServedBy::L2,
        });
        assert_eq!(a.coh_classes(), [1, 1, 0, 1]);
    }

    #[test]
    fn sketch_distance_is_exact_distinct_count() {
        let mut s = ReuseSketch::new(8);
        s.touch(10);
        s.touch(20);
        s.touch(20);
        s.touch(30);
        // Distinct lines since line 10: {20, 30} = 2, not 3 touches.
        let (reuse, _) = s.touch(10);
        assert_eq!(reuse, Reuse::Within(2));
    }

    #[test]
    fn sketch_window_wraps_without_corruption() {
        let mut s = ReuseSketch::new(4);
        for round in 0..10u64 {
            for line in 0..3u64 {
                let (reuse, _) = s.touch(line * 64);
                if round > 0 {
                    assert_eq!(reuse, Reuse::Within(2), "round {round} line {line}");
                }
            }
        }
    }

    #[test]
    fn profile_exports_are_deterministic_and_versioned() {
        let mut a = Attribution::new(cfg(4, 16));
        for i in 0..8u64 {
            a.on_event(&access(0x40, 0x1000 + i * 32, ServedBy::Memory));
        }
        a.on_event(&access(0x48, 0x9000, ServedBy::L2));
        let p1 = a.profile("test");
        let p2 = a.profile("test");
        assert_eq!(p1.to_json().compact(), p2.to_json().compact());
        assert_eq!(p1.chrome_trace(), p2.chrome_trace());
        assert_eq!(p1.version, PROFILE_VERSION);
        assert_eq!(p1.demand_misses, p1.classes.iter().sum::<u64>());
        // Ranked by misses: PC 0x40 (8 misses) first.
        assert_eq!(p1.pcs[0].pc, 0x40);
        assert_eq!(p1.pcs[0].pattern, Pattern::FixedStride(32));
        assert!(p1.table().render().contains("0x40"));
        assert!(p1.chrome_trace().contains("miss attribution"));
    }

    #[test]
    fn fenwick_range_sums() {
        let mut f = Fenwick::new(8);
        f.add(0, 1);
        f.add(3, 2);
        f.add(7, 5);
        assert_eq!(f.prefix(8), 8);
        assert_eq!(f.range(1, 4), 2);
        assert_eq!(f.range(4, 8), 5);
        assert_eq!(f.range(5, 5), 0);
    }
}
