//! Named counters and fixed-bucket latency histograms.
//!
//! Every simulation layer dumps its counters into one [`MetricsRegistry`]
//! under a layer prefix (`cpu.`, `mem.`, `coh.`, `faults.`), giving tools a
//! single schema instead of four ad-hoc result structs. Registration order
//! is preserved so exports diff cleanly between runs.

use imo_util::json::Json;

/// Bucket upper bounds (inclusive) shared by every latency histogram.
///
/// Powers of two up to 4096 cycles plus a catch-all overflow bucket. Fixed
/// bounds keep exports byte-stable across runs and make histograms from
/// different layers directly comparable.
pub const BUCKET_BOUNDS: [u64; 13] = [1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096];

/// A fixed-bucket latency histogram over [`BUCKET_BOUNDS`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// `counts[i]` holds samples `<= BUCKET_BOUNDS[i]` (and greater than the
    /// previous bound); the final slot is the overflow bucket.
    counts: [u64; BUCKET_BOUNDS.len() + 1],
    samples: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram { counts: [0; BUCKET_BOUNDS.len() + 1], samples: 0, sum: 0, max: 0 }
    }
}

impl Histogram {
    /// Records one latency sample, in cycles.
    pub fn observe(&mut self, cycles: u64) {
        let idx = BUCKET_BOUNDS.iter().position(|&b| cycles <= b).unwrap_or(BUCKET_BOUNDS.len());
        self.counts[idx] += 1;
        self.samples += 1;
        self.sum += cycles;
        self.max = self.max.max(cycles);
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Sum of all samples, in cycles.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded sample, or 0 when empty.
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean latency, or 0.0 when empty (never NaN).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.sum as f64 / self.samples as f64
        }
    }

    /// Per-bucket counts, overflow bucket last.
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// The histogram as JSON: bounds, counts, and summary moments.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("bounds", Json::arr(BUCKET_BOUNDS.iter().map(|&b| Json::from(b)))),
            ("counts", Json::arr(self.counts.iter().map(|&c| Json::from(c)))),
            ("samples", Json::from(self.samples)),
            ("sum", Json::from(self.sum)),
            ("max", Json::from(self.max)),
            ("mean", Json::from(self.mean())),
        ])
    }

    /// One-line text rendering: `samples=.. mean=.. max=..` plus the
    /// non-empty buckets as `<=bound:count` pairs.
    #[must_use]
    pub fn render(&self) -> String {
        let mut s = format!("samples={} mean={:.1} max={}", self.samples, self.mean(), self.max);
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            match BUCKET_BOUNDS.get(i) {
                Some(b) => s.push_str(&format!(" <={b}:{c}")),
                None => s.push_str(&format!(" >4096:{c}")),
            }
        }
        s
    }
}

/// An insertion-ordered registry of named counters and histograms.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: Vec<(String, u64)>,
    histograms: Vec<(String, Histogram)>,
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Adds `delta` to the counter `name`, creating it at 0 if absent.
    pub fn count(&mut self, name: &str, delta: u64) {
        match self.counters.iter_mut().find(|(k, _)| k == name) {
            Some(slot) => slot.1 += delta,
            None => self.counters.push((name.to_string(), delta)),
        }
    }

    /// Sets the counter `name` to `value`, creating it if absent.
    pub fn set(&mut self, name: &str, value: u64) {
        match self.counters.iter_mut().find(|(k, _)| k == name) {
            Some(slot) => slot.1 = value,
            None => self.counters.push((name.to_string(), value)),
        }
    }

    /// The current value of counter `name`, or `None` if never touched.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(k, _)| k == name).map(|&(_, v)| v)
    }

    /// Records a latency sample into histogram `name`, creating it if
    /// absent.
    pub fn observe(&mut self, name: &str, cycles: u64) {
        if let Some(slot) = self.histograms.iter_mut().find(|(k, _)| k == name) {
            slot.1.observe(cycles);
            return;
        }
        let mut h = Histogram::default();
        h.observe(cycles);
        self.histograms.push((name.to_string(), h));
    }

    /// Looks up a histogram by name.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.iter().find(|(k, _)| k == name).map(|(_, h)| h)
    }

    /// All counters, in registration order.
    #[must_use]
    pub fn counters(&self) -> &[(String, u64)] {
        &self.counters
    }

    /// All histograms, in registration order.
    #[must_use]
    pub fn histograms(&self) -> &[(String, Histogram)] {
        &self.histograms
    }

    /// Merges another registry into this one: counters add, histogram
    /// buckets add. Used to combine per-layer registries into one export.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, v) in &other.counters {
            self.count(k, *v);
        }
        for (k, h) in &other.histograms {
            match self.histograms.iter_mut().find(|(n, _)| n == k) {
                Some(slot) => {
                    for (i, c) in h.counts.iter().enumerate() {
                        slot.1.counts[i] += c;
                    }
                    slot.1.samples += h.samples;
                    slot.1.sum += h.sum;
                    slot.1.max = slot.1.max.max(h.max);
                }
                None => self.histograms.push((k.clone(), h.clone())),
            }
        }
    }

    /// The registry as JSON: `{"counters": {...}, "histograms": {...}}`.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj([
            (
                "counters",
                Json::Obj(self.counters.iter().map(|(k, v)| (k.clone(), Json::from(*v))).collect()),
            ),
            (
                "histograms",
                Json::Obj(self.histograms.iter().map(|(k, h)| (k.clone(), h.to_json())).collect()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_moments() {
        let mut h = Histogram::default();
        for v in [0, 1, 2, 3, 100, 5000] {
            h.observe(v);
        }
        assert_eq!(h.samples(), 6);
        assert_eq!(h.sum(), 5106);
        assert_eq!(h.max(), 5000);
        assert_eq!(h.counts()[0], 2); // 0 and 1 land in <=1
        assert_eq!(h.counts()[1], 1); // 2
        assert_eq!(h.counts()[2], 1); // 3 lands in <=4
        assert_eq!(h.counts()[BUCKET_BOUNDS.len()], 1); // overflow
        assert!((h.mean() - 851.0).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_mean_is_zero_not_nan() {
        let h = Histogram::default();
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn registry_counts_and_sets() {
        let mut m = MetricsRegistry::new();
        m.count("cpu.loads", 3);
        m.count("cpu.loads", 2);
        m.set("cpu.cycles", 99);
        m.set("cpu.cycles", 100);
        assert_eq!(m.counter("cpu.loads"), Some(5));
        assert_eq!(m.counter("cpu.cycles"), Some(100));
        assert_eq!(m.counter("missing"), None);
    }

    #[test]
    fn registry_merge_adds() {
        let mut a = MetricsRegistry::new();
        a.count("x", 1);
        a.observe("lat", 4);
        let mut b = MetricsRegistry::new();
        b.count("x", 2);
        b.count("y", 7);
        b.observe("lat", 8);
        b.observe("other", 1);
        a.merge(&b);
        assert_eq!(a.counter("x"), Some(3));
        assert_eq!(a.counter("y"), Some(7));
        let lat = a.histogram("lat").unwrap();
        assert_eq!(lat.samples(), 2);
        assert_eq!(lat.sum(), 12);
        assert_eq!(a.histogram("other").unwrap().samples(), 1);
    }

    #[test]
    fn registry_json_reparses() {
        let mut m = MetricsRegistry::new();
        m.count("a", 1);
        m.observe("h", 3);
        let j = m.to_json();
        let back = imo_util::json::parse(&j.pretty()).unwrap();
        assert_eq!(back, j);
        assert_eq!(back.get("counters").unwrap().get("a").unwrap().as_f64(), Some(1.0));
    }

    #[test]
    fn histogram_render_lists_nonempty_buckets() {
        let mut h = Histogram::default();
        h.observe(3);
        h.observe(9999);
        let r = h.render();
        assert!(r.contains("<=4:1"));
        assert!(r.contains(">4096:1"));
    }
}
