//! CPI-stack cycle attribution.
//!
//! Every simulator classifies each elapsed cycle into exactly one
//! [`CpiCategory`], accumulating a [`CpiStack`] whose total reconciles
//! *exactly* with the run's cycle count — the invariant `tests/observability.rs`
//! asserts for every tier-1 workload. This reproduces the paper's Figure 2/4
//! overhead decomposition from attribution instead of bespoke counters:
//! `base` is the busy/graduating component, `l1_miss`/`l2_miss` are the
//! memory-stall sections, and `handler` is the informing-trap overhead the
//! paper's figures isolate.

use imo_util::json::Json;

/// Where one cycle of a run went. Exactly one category per cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CpiCategory {
    /// Useful work: at least one instruction graduated this cycle (CPU), or
    /// local compute (`think` cost) in the coherence model.
    Base,
    /// No graduation and the head of the window was not blocked on memory:
    /// dependence stalls, fetch bubbles, structural hazards.
    IssueStall,
    /// The oldest instruction was blocked on a primary-cache miss served by
    /// the secondary cache.
    L1Miss,
    /// The oldest instruction was blocked on a miss that went to main
    /// memory.
    L2Miss,
    /// Fetch was redirected into (or blocked on) an informing-trap miss
    /// handler, including injected handler-fault penalties.
    Handler,
    /// Waiting on the coherence protocol: network hops, directory state
    /// changes, NACK/retry backoff, timeouts, ECC recovery on recalls.
    CoherenceWait,
}

impl CpiCategory {
    /// Every category, in display order.
    pub const ALL: [CpiCategory; 6] = [
        CpiCategory::Base,
        CpiCategory::IssueStall,
        CpiCategory::L1Miss,
        CpiCategory::L2Miss,
        CpiCategory::Handler,
        CpiCategory::CoherenceWait,
    ];

    /// Stable snake_case name used in exports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            CpiCategory::Base => "base",
            CpiCategory::IssueStall => "issue_stall",
            CpiCategory::L1Miss => "l1_miss",
            CpiCategory::L2Miss => "l2_miss",
            CpiCategory::Handler => "handler",
            CpiCategory::CoherenceWait => "coherence_wait",
        }
    }
}

/// Attributed cycles per [`CpiCategory`]. The sum over categories equals
/// total run cycles exactly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CpiStack {
    /// Cycles in which useful work retired.
    pub base: u64,
    /// Non-memory stall cycles.
    pub issue_stall: u64,
    /// Cycles stalled on L1 misses served by L2.
    pub l1_miss: u64,
    /// Cycles stalled on misses served by main memory.
    pub l2_miss: u64,
    /// Informing-trap handler overhead cycles.
    pub handler: u64,
    /// Coherence-protocol wait cycles (multiprocessor model only).
    pub coherence_wait: u64,
}

impl CpiStack {
    /// Attributes `cycles` cycles to `cat`.
    pub fn add(&mut self, cat: CpiCategory, cycles: u64) {
        match cat {
            CpiCategory::Base => self.base += cycles,
            CpiCategory::IssueStall => self.issue_stall += cycles,
            CpiCategory::L1Miss => self.l1_miss += cycles,
            CpiCategory::L2Miss => self.l2_miss += cycles,
            CpiCategory::Handler => self.handler += cycles,
            CpiCategory::CoherenceWait => self.coherence_wait += cycles,
        }
    }

    /// The attributed cycles for `cat`.
    #[must_use]
    pub fn get(&self, cat: CpiCategory) -> u64 {
        match cat {
            CpiCategory::Base => self.base,
            CpiCategory::IssueStall => self.issue_stall,
            CpiCategory::L1Miss => self.l1_miss,
            CpiCategory::L2Miss => self.l2_miss,
            CpiCategory::Handler => self.handler,
            CpiCategory::CoherenceWait => self.coherence_wait,
        }
    }

    /// Total attributed cycles — must equal the run's cycle count.
    #[must_use]
    pub fn total(&self) -> u64 {
        CpiCategory::ALL.iter().map(|&c| self.get(c)).sum()
    }

    /// Memory-stall cycles (L1 + L2 sections), the paper's cache-stall band.
    #[must_use]
    pub fn memory_stall(&self) -> u64 {
        self.l1_miss + self.l2_miss
    }

    /// Adds another stack into this one, category-wise.
    pub fn merge(&mut self, other: &CpiStack) {
        for c in CpiCategory::ALL {
            self.add(c, other.get(c));
        }
    }

    /// The stack as an ordered JSON object plus a `total` field.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut pairs: Vec<(String, Json)> = CpiCategory::ALL
            .iter()
            .map(|&c| (c.name().to_string(), Json::from(self.get(c))))
            .collect();
        pairs.push(("total".to_string(), Json::from(self.total())));
        Json::Obj(pairs)
    }

    /// A flamegraph-style text rendering: one proportional bar per
    /// category, widest first, with cycle counts and percentages. Returns
    /// an empty string for a zero-cycle stack.
    #[must_use]
    pub fn render(&self) -> String {
        let total = self.total();
        if total == 0 {
            return String::new();
        }
        const WIDTH: usize = 40;
        let mut rows: Vec<(CpiCategory, u64)> =
            CpiCategory::ALL.iter().map(|&c| (c, self.get(c))).filter(|&(_, v)| v > 0).collect();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| (a.0 as u32).cmp(&(b.0 as u32))));
        let mut out = String::new();
        for (cat, v) in rows {
            let frac = v as f64 / total as f64;
            let bar = (frac * WIDTH as f64).round().max(1.0) as usize;
            out.push_str(&format!(
                "{:<14} {:>12}  {:>6.2}%  {}\n",
                cat.name(),
                v,
                frac * 100.0,
                "#".repeat(bar.min(WIDTH)),
            ));
        }
        out.push_str(&format!("{:<14} {:>12}  100.00%\n", "total", total));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_get_total_reconcile() {
        let mut s = CpiStack::default();
        s.add(CpiCategory::Base, 10);
        s.add(CpiCategory::L1Miss, 5);
        s.add(CpiCategory::Handler, 2);
        s.add(CpiCategory::Base, 3);
        assert_eq!(s.get(CpiCategory::Base), 13);
        assert_eq!(s.total(), 20);
        assert_eq!(s.memory_stall(), 5);
    }

    #[test]
    fn merge_is_categorywise_sum() {
        let mut a = CpiStack { base: 1, issue_stall: 2, ..CpiStack::default() };
        let b = CpiStack { base: 10, coherence_wait: 4, ..CpiStack::default() };
        a.merge(&b);
        assert_eq!(a.base, 11);
        assert_eq!(a.issue_stall, 2);
        assert_eq!(a.coherence_wait, 4);
        assert_eq!(a.total(), 17);
    }

    #[test]
    fn json_total_matches() {
        let s = CpiStack { base: 7, l2_miss: 3, ..CpiStack::default() };
        let j = s.to_json();
        assert_eq!(j.get("total").unwrap().as_f64(), Some(10.0));
        assert_eq!(j.get("base").unwrap().as_f64(), Some(7.0));
        assert_eq!(j.get("coherence_wait").unwrap().as_f64(), Some(0.0));
    }

    #[test]
    fn render_sorts_widest_first_and_totals() {
        let s = CpiStack { base: 10, l1_miss: 30, ..CpiStack::default() };
        let r = s.render();
        let lines: Vec<&str> = r.lines().collect();
        assert!(lines[0].starts_with("l1_miss"));
        assert!(lines[1].starts_with("base"));
        assert!(lines[2].starts_with("total"));
        assert!(lines[2].contains("40"));
        assert_eq!(CpiStack::default().render(), "");
    }
}
