//! The bounded ring-buffer event recorder.
//!
//! A [`Recorder`] is handed to a simulator as `Option<&mut Recorder>`; the
//! `None` path costs one branch per would-be event and the recorder never
//! feeds back into simulation state, so instrumented runs are bit-identical
//! to plain ones. With a recorder present, each event pays one mask AND
//! before any allocation — disabling a category suppresses its stream
//! entirely.

use crate::attrib::{AttribConfig, Attribution};
use crate::cpi::CpiStack;
use crate::event::{CategoryMask, Event, EventKind};
use crate::metrics::MetricsRegistry;

/// Default ring capacity: enough for the tier-1 workloads' full event
/// streams while bounding memory on long runs.
pub const DEFAULT_CAPACITY: usize = 1 << 16;

/// Records typed [`Event`]s into a bounded ring buffer, owns the run's
/// [`MetricsRegistry`], and accumulates the CPI stack.
#[derive(Debug, Clone)]
pub struct Recorder {
    mask: CategoryMask,
    capacity: usize,
    /// Ring storage; once full, `start` marks the oldest retained event.
    ring: Vec<Event>,
    start: usize,
    dropped: u64,
    total: u64,
    /// Optional streaming miss-attribution analyzer. Fed every event
    /// *before* the category mask and ring buffer, so masking and
    /// eviction can never skew attribution.
    attrib: Option<Box<Attribution>>,
    /// Shared named counters and latency histograms.
    pub metrics: MetricsRegistry,
    /// Cycle attribution accumulated by the simulator.
    pub cpi: CpiStack,
}

impl Recorder {
    /// A recorder with the given enable mask and [`DEFAULT_CAPACITY`].
    #[must_use]
    pub fn new(mask: CategoryMask) -> Recorder {
        Recorder::with_capacity(mask, DEFAULT_CAPACITY)
    }

    /// A recorder retaining at most `capacity` events (oldest evicted
    /// first). A capacity of 0 keeps metrics and CPI attribution but
    /// retains no events.
    #[must_use]
    pub fn with_capacity(mask: CategoryMask, capacity: usize) -> Recorder {
        Recorder {
            mask,
            capacity,
            ring: Vec::new(),
            start: 0,
            dropped: 0,
            total: 0,
            attrib: None,
            metrics: MetricsRegistry::new(),
            cpi: CpiStack::default(),
        }
    }

    /// A recorder with every category enabled.
    #[must_use]
    pub fn all() -> Recorder {
        Recorder::new(CategoryMask::ALL)
    }

    /// A recorder with no event categories enabled — metrics and CPI
    /// attribution still accumulate.
    #[must_use]
    pub fn disabled() -> Recorder {
        Recorder::new(CategoryMask::NONE)
    }

    /// The enable mask.
    #[must_use]
    pub fn mask(&self) -> CategoryMask {
        self.mask
    }

    /// Enables miss attribution for the given cache geometry. Replaces any
    /// prior analyzer state.
    pub fn enable_attribution(&mut self, cfg: AttribConfig) {
        self.attrib = Some(Box::new(Attribution::new(cfg)));
    }

    /// The attribution analyzer, when enabled.
    #[must_use]
    pub fn attribution(&self) -> Option<&Attribution> {
        self.attrib.as_deref()
    }

    /// Detaches and returns the attribution analyzer.
    pub fn take_attribution(&mut self) -> Option<Box<Attribution>> {
        self.attrib.take()
    }

    /// Records an event if its category is enabled. One mask test on the
    /// fast path; eviction replaces the oldest event once the ring fills.
    #[inline]
    pub fn record(&mut self, cycle: u64, kind: EventKind) {
        if let Some(attrib) = self.attrib.as_deref_mut() {
            attrib.on_event(&kind);
        }
        if !self.mask.contains(kind.category()) {
            return;
        }
        self.total += 1;
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        let ev = Event { cycle, kind };
        if self.ring.len() < self.capacity {
            self.ring.push(ev);
        } else {
            self.ring[self.start] = ev;
            self.start = (self.start + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Retained events, oldest first.
    #[must_use]
    pub fn events(&self) -> Vec<Event> {
        let mut out = Vec::with_capacity(self.ring.len());
        out.extend_from_slice(&self.ring[self.start..]);
        out.extend_from_slice(&self.ring[..self.start]);
        out
    }

    /// Number of retained events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether no events are retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Events that matched the mask but were evicted (or not retained
    /// because capacity is 0).
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total events that matched the mask, retained or not.
    #[must_use]
    pub fn total_recorded(&self) -> u64 {
        self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Category;

    fn ev(seq: u64) -> EventKind {
        EventKind::Issue { seq }
    }

    #[test]
    fn mask_filters_categories() {
        let mut r = Recorder::new(CategoryMask::of(&[Category::Trap]));
        r.record(1, ev(0)); // pipeline: filtered
        r.record(2, EventKind::TrapEnter { seq: 1, pc: 0x40 });
        assert_eq!(r.len(), 1);
        assert_eq!(r.total_recorded(), 1);
        assert_eq!(r.events()[0].cycle, 2);
    }

    #[test]
    fn disabled_recorder_retains_nothing() {
        let mut r = Recorder::disabled();
        r.record(1, ev(0));
        r.record(2, EventKind::EccCorrected { line: 0 });
        assert!(r.is_empty());
        assert_eq!(r.total_recorded(), 0);
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let mut r = Recorder::with_capacity(CategoryMask::ALL, 3);
        for i in 0..5 {
            r.record(i, ev(i));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        assert_eq!(r.total_recorded(), 5);
        let cycles: Vec<u64> = r.events().iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![2, 3, 4]);
    }

    #[test]
    fn attribution_sees_masked_and_evicted_events() {
        use crate::event::ServedBy;
        // Mask excludes Cache entirely AND capacity is 1: the analyzer
        // must still see every access.
        let mut r = Recorder::with_capacity(CategoryMask::of(&[Category::Trap]), 1);
        r.enable_attribution(AttribConfig::default());
        for i in 0..4u64 {
            r.record(
                i,
                EventKind::DataAccess {
                    served: ServedBy::Memory,
                    pc: 0x10,
                    addr: 0x1000 + i * 64,
                    line: 0x1000 + i * 64,
                    store: false,
                    prefetch: false,
                    ptr_base: false,
                },
            );
        }
        assert_eq!(r.total_recorded(), 0, "mask still filters the ring");
        let a = r.attribution().expect("enabled");
        assert_eq!(a.cpu_demand_misses(), 4);
        assert_eq!(a.cpu_classified_total(), 4);
    }

    #[test]
    fn zero_capacity_keeps_metrics_only() {
        let mut r = Recorder::with_capacity(CategoryMask::ALL, 0);
        r.record(1, ev(0));
        r.metrics.count("x", 1);
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 1);
        assert_eq!(r.metrics.counter("x"), Some(1));
    }
}
