//! The typed event vocabulary shared by every simulation layer.
//!
//! An [`Event`] is a `(cycle, kind)` pair. Kinds are grouped into
//! [`Category`] bits so a [`crate::Recorder`] can enable exactly the streams
//! a tool needs; the category of a kind is fixed ([`EventKind::category`]),
//! which is what makes per-category enable masks cheap: one AND plus one
//! branch on the recording path.

use std::fmt;

/// Which level of the hierarchy served a data reference.
///
/// A deliberately self-contained mirror of `imo_mem::HitLevel` so this crate
/// stays below `imo-mem` in the dependency graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServedBy {
    /// Primary-cache hit.
    L1,
    /// Primary miss served by the secondary cache.
    L2,
    /// Secondary miss served by main memory.
    Memory,
}

impl ServedBy {
    /// Short stable label used in exports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ServedBy::L1 => "l1_hit",
            ServedBy::L2 => "l1_miss",
            ServedBy::Memory => "l2_miss",
        }
    }
}

/// An event category — one bit of a [`CategoryMask`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Category {
    /// Instruction lifecycle: fetch, issue, graduate.
    Pipeline,
    /// Data/instruction cache outcomes.
    Cache,
    /// MSHR allocation and miss merging.
    Mshr,
    /// Informing-trap entry and return.
    Trap,
    /// Coherence protocol traffic (requests, drops, retries, NACKs,
    /// invalidations).
    Coherence,
    /// Injected faults and ECC events.
    Fault,
}

impl Category {
    /// Every category, in mask-bit order.
    pub const ALL: [Category; 6] = [
        Category::Pipeline,
        Category::Cache,
        Category::Mshr,
        Category::Trap,
        Category::Coherence,
        Category::Fault,
    ];

    /// This category's bit in a [`CategoryMask`].
    #[must_use]
    pub fn bit(self) -> u32 {
        1 << (self as u32)
    }

    /// Stable lower-case name (also accepted by [`Category::parse`]).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Category::Pipeline => "pipeline",
            Category::Cache => "cache",
            Category::Mshr => "mshr",
            Category::Trap => "trap",
            Category::Coherence => "coherence",
            Category::Fault => "fault",
        }
    }

    /// Parses a category name as printed by [`Category::name`].
    #[must_use]
    pub fn parse(s: &str) -> Option<Category> {
        Category::ALL.into_iter().find(|c| c.name() == s)
    }
}

/// A set of enabled [`Category`] bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CategoryMask(u32);

impl CategoryMask {
    /// No categories enabled: the recorder drops everything.
    pub const NONE: CategoryMask = CategoryMask(0);
    /// Every category enabled.
    pub const ALL: CategoryMask = CategoryMask((1 << 6) - 1);

    /// A mask of exactly the given categories.
    #[must_use]
    pub fn of(cats: &[Category]) -> CategoryMask {
        CategoryMask(cats.iter().fold(0, |m, c| m | c.bit()))
    }

    /// Whether `cat` is enabled.
    #[must_use]
    pub fn contains(self, cat: Category) -> bool {
        self.0 & cat.bit() != 0
    }

    /// Whether the mask is empty (no recording at all).
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Parses a comma-separated category list; `all` and `none` are
    /// accepted as shorthands. Unknown names yield `None`.
    #[must_use]
    pub fn parse(s: &str) -> Option<CategoryMask> {
        match s {
            "all" => Some(CategoryMask::ALL),
            "none" | "" => Some(CategoryMask::NONE),
            _ => {
                let mut mask = CategoryMask::NONE;
                for part in s.split(',') {
                    mask.0 |= Category::parse(part.trim())?.bit();
                }
                Some(mask)
            }
        }
    }
}

impl fmt::Display for CategoryMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return f.write_str("none");
        }
        let mut first = true;
        for c in Category::ALL {
            if self.contains(c) {
                if !first {
                    f.write_str(",")?;
                }
                f.write_str(c.name())?;
                first = false;
            }
        }
        Ok(())
    }
}

/// What happened. Every variant belongs to exactly one [`Category`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// An instruction entered the machine (fetched and functionally
    /// executed on the architectural path).
    Fetch {
        /// Dynamic sequence number.
        seq: u64,
        /// Instruction address.
        pc: u64,
    },
    /// An instruction was issued to a functional unit.
    Issue {
        /// Dynamic sequence number.
        seq: u64,
    },
    /// An instruction graduated (committed in order).
    Graduate {
        /// Dynamic sequence number.
        seq: u64,
    },
    /// A data reference probed the hierarchy.
    DataAccess {
        /// Level that served it.
        served: ServedBy,
        /// Address of the memory instruction that issued the reference.
        pc: u64,
        /// Effective (byte) address of the reference.
        addr: u64,
        /// Line-aligned address.
        line: u64,
        /// Whether the reference was a store.
        store: bool,
        /// Whether this was a software-prefetch probe (not a demand
        /// reference; excluded from demand-miss reconciliation).
        prefetch: bool,
        /// Whether the base register of the address was itself produced by
        /// a load (pointer-chase provenance).
        ptr_base: bool,
    },
    /// An instruction-fetch line missed the primary I-cache.
    InstMiss {
        /// Fetch address.
        pc: u64,
    },
    /// An MSHR was allocated for an outstanding miss.
    MshrAllocate {
        /// Line-aligned miss address.
        line: u64,
    },
    /// A miss merged into an already-outstanding fill of the same line.
    MshrMerge {
        /// Line-aligned miss address.
        line: u64,
    },
    /// An informing memory operation missed and redirected fetch into its
    /// handler (includes taken `bmiss` branches).
    TrapEnter {
        /// Sequence number of the trapping operation.
        seq: u64,
        /// Address of the trapping operation.
        pc: u64,
    },
    /// A miss handler returned (`jmhrr` graduated).
    TrapReturn {
        /// Sequence number of the returning jump.
        seq: u64,
    },
    /// An injected miss-handler fault (overrun / stale MHAR) hit this trap
    /// dispatch.
    HandlerFault {
        /// Sequence number of the trapping operation.
        seq: u64,
        /// Extra redirect cycles charged.
        penalty: u64,
    },
    /// A directory protocol request was sent.
    CohRequest {
        /// Requesting processor.
        proc: u32,
        /// Line the request is for.
        line: u64,
    },
    /// A protocol message was dropped by the interconnect.
    CohDrop {
        /// Requesting processor.
        proc: u32,
        /// Line the request was for.
        line: u64,
    },
    /// A dropped request was re-sent after backoff.
    CohRetry {
        /// Requesting processor.
        proc: u32,
        /// Line the request is for.
        line: u64,
        /// Backoff cycles waited before this re-send.
        backoff: u64,
    },
    /// The home node NACKed a duplicate request.
    CohNack {
        /// Requesting processor.
        proc: u32,
        /// Line the request was for.
        line: u64,
    },
    /// A per-processor data reference probed a private cache in the
    /// coherence simulator (local time; one event per driven op).
    CohAccess {
        /// Referencing processor.
        proc: u32,
        /// Effective (byte) address of the reference.
        addr: u64,
        /// Line-aligned address.
        line: u64,
        /// Whether the reference was a write.
        store: bool,
        /// Level of the private hierarchy that served it.
        served: ServedBy,
    },
    /// A line invalidation was delivered to a remote cache.
    CohInvalidate {
        /// Processor whose cached copy was recalled.
        proc: u32,
        /// Invalidated line.
        line: u64,
    },
    /// A single-bit ECC fault was corrected on a recalled line.
    EccCorrected {
        /// Affected line.
        line: u64,
    },
    /// A double-bit ECC fault lost a recalled line (refetched from memory).
    EccUncorrectable {
        /// Affected line.
        line: u64,
    },
}

impl EventKind {
    /// The category this kind records under.
    #[must_use]
    pub fn category(self) -> Category {
        match self {
            EventKind::Fetch { .. } | EventKind::Issue { .. } | EventKind::Graduate { .. } => {
                Category::Pipeline
            }
            EventKind::DataAccess { .. } | EventKind::InstMiss { .. } => Category::Cache,
            EventKind::MshrAllocate { .. } | EventKind::MshrMerge { .. } => Category::Mshr,
            EventKind::TrapEnter { .. } | EventKind::TrapReturn { .. } => Category::Trap,
            EventKind::CohRequest { .. }
            | EventKind::CohDrop { .. }
            | EventKind::CohRetry { .. }
            | EventKind::CohNack { .. }
            | EventKind::CohAccess { .. }
            | EventKind::CohInvalidate { .. } => Category::Coherence,
            EventKind::HandlerFault { .. }
            | EventKind::EccCorrected { .. }
            | EventKind::EccUncorrectable { .. } => Category::Fault,
        }
    }

    /// Short stable name used by the exporters.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Fetch { .. } => "fetch",
            EventKind::Issue { .. } => "issue",
            EventKind::Graduate { .. } => "graduate",
            EventKind::DataAccess { served, .. } => served.label(),
            EventKind::InstMiss { .. } => "inst_miss",
            EventKind::MshrAllocate { .. } => "mshr_alloc",
            EventKind::MshrMerge { .. } => "mshr_merge",
            EventKind::TrapEnter { .. } => "trap_enter",
            EventKind::TrapReturn { .. } => "trap_return",
            EventKind::HandlerFault { .. } => "handler_fault",
            EventKind::CohRequest { .. } => "coh_request",
            EventKind::CohDrop { .. } => "coh_drop",
            EventKind::CohRetry { .. } => "coh_retry",
            EventKind::CohNack { .. } => "coh_nack",
            EventKind::CohAccess { .. } => "coh_access",
            EventKind::CohInvalidate { .. } => "coh_invalidate",
            EventKind::EccCorrected { .. } => "ecc_corrected",
            EventKind::EccUncorrectable { .. } => "ecc_uncorrectable",
        }
    }

    /// The export track (Chrome trace `tid`) this kind renders on: category
    /// lanes for uniprocessor events, one lane per processor (offset past
    /// the category lanes) for coherence traffic.
    #[must_use]
    pub fn track(self) -> u32 {
        const PROC_LANE_BASE: u32 = 16;
        match self {
            EventKind::CohRequest { proc, .. }
            | EventKind::CohDrop { proc, .. }
            | EventKind::CohRetry { proc, .. }
            | EventKind::CohNack { proc, .. }
            | EventKind::CohAccess { proc, .. }
            | EventKind::CohInvalidate { proc, .. } => PROC_LANE_BASE + proc,
            other => other.category() as u32,
        }
    }
}

/// One recorded observation: something happened at a cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Simulation cycle (local processor time for coherence events).
    pub cycle: u64,
    /// What happened.
    pub kind: EventKind,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_category_has_a_distinct_bit() {
        let mut seen = 0u32;
        for c in Category::ALL {
            assert_eq!(seen & c.bit(), 0, "{c:?} bit collides");
            seen |= c.bit();
        }
        assert_eq!(CategoryMask::ALL.0, seen);
    }

    #[test]
    fn mask_parse_round_trips() {
        let m = CategoryMask::of(&[Category::Cache, Category::Trap]);
        assert_eq!(CategoryMask::parse(&m.to_string()), Some(m));
        assert_eq!(CategoryMask::parse("all"), Some(CategoryMask::ALL));
        assert_eq!(CategoryMask::parse("none"), Some(CategoryMask::NONE));
        assert_eq!(CategoryMask::parse("bogus"), None);
        assert_eq!(CategoryMask::ALL.to_string(), "pipeline,cache,mshr,trap,coherence,fault");
    }

    #[test]
    fn kinds_map_to_their_categories() {
        assert_eq!(EventKind::Fetch { seq: 0, pc: 0 }.category(), Category::Pipeline);
        assert_eq!(
            EventKind::DataAccess {
                served: ServedBy::L2,
                pc: 0,
                addr: 0,
                line: 0,
                store: false,
                prefetch: false,
                ptr_base: false,
            }
            .category(),
            Category::Cache
        );
        assert_eq!(
            EventKind::CohAccess { proc: 1, addr: 0, line: 0, store: true, served: ServedBy::L1 }
                .category(),
            Category::Coherence
        );
        assert_eq!(EventKind::MshrMerge { line: 0 }.category(), Category::Mshr);
        assert_eq!(EventKind::TrapEnter { seq: 0, pc: 0 }.category(), Category::Trap);
        assert_eq!(EventKind::CohNack { proc: 3, line: 0 }.category(), Category::Coherence);
        assert_eq!(EventKind::EccCorrected { line: 0 }.category(), Category::Fault);
        assert_eq!(EventKind::HandlerFault { seq: 0, penalty: 9 }.category(), Category::Fault);
    }

    #[test]
    fn coherence_events_get_per_proc_tracks() {
        assert_eq!(EventKind::CohRequest { proc: 5, line: 0 }.track(), 21);
        assert_eq!(EventKind::Fetch { seq: 0, pc: 0 }.track(), 0);
        assert_eq!(EventKind::EccCorrected { line: 0 }.track(), Category::Fault as u32);
    }
}
