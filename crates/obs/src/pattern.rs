//! Per-PC access-pattern taxonomy: fixed-stride, pointer-chase, irregular.
//!
//! A [`PatternDetector`] folds the effective-address stream of one static
//! memory instruction into a bounded sketch (a capped delta table plus a
//! pointer-provenance counter) and classifies the stream into a
//! [`Pattern`]. The classifier is deliberately simple and fully
//! deterministic: pointer-chase provenance (the base register was produced
//! by a load) dominates, then a dominant address delta wins, otherwise the
//! stream is irregular. The BSC access-pattern tooling cited in PAPERS.md
//! motivates exactly this three-way split.

use std::fmt;

/// How many distinct address deltas a detector tracks before lumping the
/// rest into an "other" bucket. Real strided code has one or two deltas
/// (the stride and the loop-carried wrap); sixteen is generous.
pub const MAX_DELTAS: usize = 16;

/// Fraction (numerator/denominator) of references whose base register came
/// from a load for the stream to classify as pointer-chasing.
pub const PTR_CHASE_NUM: u64 = 1;
/// See [`PTR_CHASE_NUM`].
pub const PTR_CHASE_DEN: u64 = 2;

/// Fraction of deltas that must agree for a stream to classify as
/// fixed-stride (3/5 = 60%).
pub const STRIDE_NUM: u64 = 3;
/// See [`STRIDE_NUM`].
pub const STRIDE_DEN: u64 = 5;

/// Minimum observed deltas before a stride classification is trusted.
pub const MIN_DELTAS: u64 = 3;

/// The classified access pattern of one static memory instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pattern {
    /// A dominant constant address delta (bytes; may be negative).
    FixedStride(i64),
    /// Addresses whose base registers are load results: linked-list /
    /// graph traversal.
    PointerChase,
    /// No dominant delta and no load-provenance signal.
    Irregular,
}

impl Pattern {
    /// Stable lower-case tag used in JSON profiles.
    #[must_use]
    pub fn tag(self) -> &'static str {
        match self {
            Pattern::FixedStride(_) => "fixed_stride",
            Pattern::PointerChase => "pointer_chase",
            Pattern::Irregular => "irregular",
        }
    }

    /// The detected stride, when the pattern is [`Pattern::FixedStride`].
    #[must_use]
    pub fn stride(self) -> Option<i64> {
        match self {
            Pattern::FixedStride(s) => Some(s),
            _ => None,
        }
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pattern::FixedStride(s) => write!(f, "stride {s:+}"),
            Pattern::PointerChase => f.write_str("pointer-chase"),
            Pattern::Irregular => f.write_str("irregular"),
        }
    }
}

/// Streaming classifier for one PC's effective-address sequence.
#[derive(Debug, Clone, Default)]
pub struct PatternDetector {
    last_addr: Option<u64>,
    /// `(delta, count)` pairs, insertion-ordered, capped at [`MAX_DELTAS`].
    deltas: Vec<(i64, u64)>,
    /// Deltas that no longer fit the table.
    other: u64,
    /// References whose base register held a load result.
    ptr_refs: u64,
    /// Total references observed.
    refs: u64,
}

impl PatternDetector {
    /// A fresh detector.
    #[must_use]
    pub fn new() -> PatternDetector {
        PatternDetector::default()
    }

    /// Feeds one reference: its effective address and whether the base
    /// register was produced by a load.
    pub fn observe(&mut self, addr: u64, ptr_base: bool) {
        self.refs += 1;
        if ptr_base {
            self.ptr_refs += 1;
        }
        if let Some(prev) = self.last_addr {
            let delta = addr.wrapping_sub(prev) as i64;
            if let Some(slot) = self.deltas.iter_mut().find(|(d, _)| *d == delta) {
                slot.1 += 1;
            } else if self.deltas.len() < MAX_DELTAS {
                self.deltas.push((delta, 1));
            } else {
                self.other += 1;
            }
        }
        self.last_addr = Some(addr);
    }

    /// Total references observed.
    #[must_use]
    pub fn refs(&self) -> u64 {
        self.refs
    }

    /// The most frequent delta and its count, if any delta was observed.
    #[must_use]
    pub fn dominant_delta(&self) -> Option<(i64, u64)> {
        // max_by_key keeps the *last* maximum; iterate manually so ties
        // resolve to the first-seen delta, independent of insertion churn.
        let mut best: Option<(i64, u64)> = None;
        for &(d, n) in &self.deltas {
            if best.is_none_or(|(_, bn)| n > bn) {
                best = Some((d, n));
            }
        }
        best
    }

    /// Classifies the stream observed so far.
    #[must_use]
    pub fn classify(&self) -> Pattern {
        if self.refs > 0 && self.ptr_refs * PTR_CHASE_DEN >= self.refs * PTR_CHASE_NUM {
            return Pattern::PointerChase;
        }
        let total_deltas: u64 = self.deltas.iter().map(|(_, n)| n).sum::<u64>() + self.other;
        if total_deltas >= MIN_DELTAS {
            if let Some((delta, count)) = self.dominant_delta() {
                if count * STRIDE_DEN >= total_deltas * STRIDE_NUM {
                    return Pattern::FixedStride(delta);
                }
            }
        }
        Pattern::Irregular
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_stride_detected_with_exact_stride() {
        let mut d = PatternDetector::new();
        for i in 0..64u64 {
            d.observe(0x1000 + i * 8, false);
        }
        assert_eq!(d.classify(), Pattern::FixedStride(8));
        assert_eq!(d.classify().stride(), Some(8));
    }

    #[test]
    fn negative_stride_detected() {
        let mut d = PatternDetector::new();
        for i in (0..64u64).rev() {
            d.observe(0x8000 + i * 16, false);
        }
        assert_eq!(d.classify(), Pattern::FixedStride(-16));
    }

    #[test]
    fn pointer_provenance_dominates_stride() {
        let mut d = PatternDetector::new();
        for i in 0..32u64 {
            d.observe(0x2000 + i * 8, true);
        }
        assert_eq!(d.classify(), Pattern::PointerChase);
    }

    #[test]
    fn scattered_addresses_are_irregular() {
        let mut d = PatternDetector::new();
        let mut a = 0x9e3779b97f4a7c15u64;
        for _ in 0..64 {
            a = a.wrapping_mul(0x2545f4914f6cdd1d).wrapping_add(0x1234567);
            d.observe(a, false);
        }
        assert_eq!(d.classify(), Pattern::Irregular);
    }

    #[test]
    fn too_few_samples_stay_irregular() {
        let mut d = PatternDetector::new();
        d.observe(0x10, false);
        d.observe(0x18, false);
        assert_eq!(d.classify(), Pattern::Irregular);
    }

    #[test]
    fn delta_table_cap_lumps_overflow() {
        let mut d = PatternDetector::new();
        let mut addr = 0u64;
        // MAX_DELTAS+4 distinct deltas; table must not grow past the cap.
        for i in 0..(MAX_DELTAS as u64 + 4) {
            addr += 1000 + i * 7;
            d.observe(addr, false);
        }
        assert!(d.deltas.len() <= MAX_DELTAS);
        assert_eq!(d.classify(), Pattern::Irregular);
    }
}
