//! # informing-memops
//!
//! A Rust reproduction of *Informing Memory Operations: Providing Memory
//! Performance Feedback in Modern Processors* (Horowitz, Martonosi, Mowry &
//! Smith, ISCA 1996).
//!
//! This façade crate re-exports the workspace's member crates:
//!
//! * [`util`] — the zero-dependency substrate: seeded PRNG, deterministic
//!   property-test harness, wall-clock micro-bench runner, JSON, and the
//!   shared stats/report layer (no external crates anywhere in the tree).
//! * [`isa`] — the IRIS instruction set with informing-memory extensions,
//!   an assembler DSL and a functional executor.
//! * [`mem`] — the cache/memory-hierarchy substrate (set-associative caches,
//!   lockup-free MSHRs, banked L1, finite-bandwidth main memory).
//! * [`cpu`] — cycle-level 4-issue in-order (Alpha-21164-like) and
//!   out-of-order (MIPS-R10000-like) processor models.
//! * [`core`] — the paper's contribution as a library: instrumentation of
//!   programs with informing memory operations, generic and purpose-built
//!   miss handlers (profiling, prefetching, multithreading), and the
//!   experiment framework behind the paper's figures.
//! * [`workloads`] — SPEC92-like benchmark kernels written in IRIS.
//! * [`coherence`] — the §4.3 case study: fine-grained access control for
//!   cache coherence on a simulated 16-processor machine, with a resilient
//!   directory protocol (retry/backoff, timeouts, forward-progress watchdog).
//! * [`faults`] — deterministic, seed-driven fault injection: reproducible
//!   fault schedules for the interconnect, cache lines and miss handlers.
//! * [`obs`] — the deterministic observability layer: typed event tracing
//!   into a bounded ring buffer, a shared metrics registry with latency
//!   histograms, exact CPI-stack cycle attribution, and Chrome-trace /
//!   flamegraph exporters (see `examples/observe.rs`).
//!
//! See `README.md` for a quickstart and `DESIGN.md` / `EXPERIMENTS.md` for
//! the system inventory and the per-figure reproduction notes.

#![forbid(unsafe_code)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub use imo_coherence as coherence;
pub use imo_core as core;
pub use imo_cpu as cpu;
pub use imo_faults as faults;
pub use imo_isa as isa;
pub use imo_mem as mem;
pub use imo_obs as obs;
pub use imo_util as util;
pub use imo_workloads as workloads;
