//! Fault-injection suites: determinism of fault schedules, protocol safety
//! under an unreliable interconnect, graceful degradation of the informing
//! machinery, and reachability of every typed failure mode.
//!
//! The contract under test: a `FaultPlan` is a *pure function of its seed* —
//! rerunning any simulation with the same plan reproduces every counter — and
//! the zero-fault plan is bit-identical to the fault-free path.

use imo_faults::{FaultConfig, FaultPlan};
use imo_util::check::Checker;
use imo_util::ensure_eq;
use informing_memops::coherence::{
    simulate, simulate_baseline, simulate_faulty, simulate_faulty_full, MachineParams, Scheme,
    SimError,
};
use informing_memops::cpu::{inorder, ooo, InOrderConfig, OooConfig, RunLimits};
use informing_memops::isa::{Asm, Cond, Program, Reg};
use informing_memops::workloads::parallel::{all_apps, migratory, TraceConfig};

fn trace_cfg(procs: usize, seed: u64) -> TraceConfig {
    TraceConfig { procs, ops_per_proc: 2_500, seed }
}

fn drop_dup_delay(seed: u64, drop: f64, dup: f64, delay: f64) -> FaultPlan {
    let mut c = FaultConfig::none(seed);
    c.drop_rate = drop;
    c.dup_rate = dup;
    c.delay_rate = delay;
    FaultPlan::new(c)
}

// ---------------------------------------------------------------- coherence

#[test]
fn same_seed_reproduces_every_counter() {
    Checker::new("same_seed_reproduces_every_counter").cases(12).run(|g| {
        let t = migratory(&trace_cfg(4, g.int(0u64..1 << 20)));
        let plan = drop_dup_delay(g.int(0u64..1 << 20), 0.05, 0.05, 0.10);
        let params = MachineParams::table2();
        let scheme = *g.pick(&[Scheme::RefCheck, Scheme::Ecc, Scheme::Informing]);
        let a = simulate_faulty(&t, scheme, &params, &plan);
        let b = simulate_faulty(&t, scheme, &params, &plan);
        ensure_eq!(a, b, "fault schedules must be pure functions of the seed");
        Ok(())
    });
}

#[test]
fn zero_fault_plan_is_bit_identical_to_baseline() {
    let params = MachineParams::table2();
    for app in all_apps(&trace_cfg(8, 42)) {
        for scheme in Scheme::all() {
            let base = simulate_baseline(&app, scheme, &params);
            let faulty = simulate_faulty(&app, scheme, &params, &FaultPlan::none())
                .expect("zero-fault run completes");
            assert_eq!(base, faulty, "{}/{}", app.name, scheme.name());
            assert_eq!(faulty.retries, 0);
            assert_eq!(faulty.dropped_msgs, 0);
            assert_eq!(faulty.nacks, 0);
            assert_eq!(faulty.ecc_corrected + faulty.ecc_uncorrectable, 0);
        }
    }
}

#[test]
fn protocol_invariants_hold_under_drop_dup_delay() {
    Checker::new("protocol_invariants_hold_under_drop_dup_delay").cases(12).run(|g| {
        let t = migratory(&trace_cfg(g.int(2usize..8), g.int(0u64..1 << 20)));
        let plan = drop_dup_delay(
            g.int(0u64..1 << 20),
            0.12 * g.int(0u64..100) as f64 / 100.0,
            0.12 * g.int(0u64..100) as f64 / 100.0,
            0.12 * g.int(0u64..100) as f64 / 100.0,
        );
        let params = MachineParams::table2();
        let (r, dir) = simulate_faulty_full(&t, Scheme::Informing, &params, &plan)
            .map_err(|e| format!("moderate fault rates must recover: {e}"))?;
        dir.check_invariants()?;
        ensure_eq!(r.ops, t.per_proc.iter().map(|v| v.len() as u64).sum::<u64>());
        // Every loss shows up as exactly one timeout and one retry.
        ensure_eq!(r.retries, r.dropped_msgs);
        ensure_eq!(r.timeouts, r.dropped_msgs);
        Ok(())
    });
}

#[test]
fn losses_recover_via_retry_and_cost_cycles() {
    let t = migratory(&trace_cfg(8, 9));
    let params = MachineParams::table2();
    let base = simulate_baseline(&t, Scheme::Informing, &params);
    let r = simulate_faulty(&t, Scheme::Informing, &params, &drop_dup_delay(3, 0.2, 0.0, 0.0))
        .expect("20% loss recovers via retry");
    assert!(r.retries > 0, "a 20% drop rate must force retries");
    assert!(
        r.total_cycles > base.total_cycles,
        "timeouts and backoff must cost cycles: {} vs {}",
        r.total_cycles,
        base.total_cycles
    );
    // Timing shifts reorder the cross-processor interleaving (so action
    // counts may differ), but every reference must still complete.
    assert_eq!(r.ops, base.ops, "recovery must not lose references");
}

#[test]
fn ecc_faults_on_recalled_lines_are_counted_and_survivable() {
    let t = migratory(&trace_cfg(8, 11));
    let params = MachineParams::table2();
    let mut c = FaultConfig::none(5);
    c.ecc_single_rate = 0.3;
    c.ecc_double_rate = 0.3;
    let (r, dir) = simulate_faulty_full(&t, Scheme::Informing, &params, &FaultPlan::new(c))
        .expect("ECC faults are always survivable");
    assert!(r.invalidations > 0, "migratory sharing must recall lines");
    assert!(
        r.ecc_corrected + r.ecc_uncorrectable > 0,
        "30%+30% ECC rates over {} recalls must fire",
        r.invalidations
    );
    dir.check_invariants().expect("ECC faults must not corrupt the protocol");
}

#[test]
fn retry_exhaustion_is_a_typed_error_with_snapshot() {
    let t = migratory(&trace_cfg(4, 1));
    let mut params = MachineParams::table2();
    params.backoff.max_retries = 3;
    params.limits.watchdog_failures = 100; // watchdog must not fire first
    let err = simulate_faulty(&t, Scheme::Informing, &params, &drop_dup_delay(2, 1.0, 0.0, 0.0))
        .expect_err("total loss with a tight retry cap must fail");
    match err {
        SimError::RetryExhausted { attempts, snapshot, .. } => {
            assert_eq!(attempts, 4, "max_retries + 1 delivery attempts");
            assert!(snapshot.ownership.contains("line"), "{}", snapshot.ownership);
        }
        other => panic!("expected RetryExhausted, got {other}"),
    }
}

#[test]
fn watchdog_turns_total_loss_into_deadlock_with_diagnosis() {
    let t = migratory(&trace_cfg(4, 1));
    let mut params = MachineParams::table2();
    params.backoff.max_retries = 1_000; // retries alone would grind forever
    params.limits.watchdog_failures = 8;
    let err = simulate_faulty(&t, Scheme::Informing, &params, &drop_dup_delay(2, 1.0, 0.0, 0.0))
        .expect_err("the watchdog must declare deadlock");
    match err {
        SimError::Deadlock { cycle, snapshot } => {
            assert!(cycle > 0);
            assert!(snapshot.pending_procs > 0);
            assert!(snapshot.attempts >= 8);
            let msg = SimError::Deadlock { cycle, snapshot }.to_string();
            assert!(msg.contains("stuck on"), "diagnosis must name the line: {msg}");
        }
        other => panic!("expected Deadlock, got {other}"),
    }
}

#[test]
fn event_budget_bounds_every_run() {
    let t = migratory(&trace_cfg(4, 1));
    let mut params = MachineParams::table2();
    params.limits.event_budget = 100;
    let err = simulate(&t, Scheme::Informing, &params).expect_err("100 events is too few");
    assert_eq!(err, SimError::EventBudget { budget: 100 });
}

#[test]
fn more_than_64_procs_is_rejected() {
    let t = migratory(&TraceConfig { procs: 65, ops_per_proc: 10, seed: 0 });
    let err = simulate(&t, Scheme::Informing, &MachineParams::table2())
        .expect_err("the sharer bitset holds 64 nodes");
    assert_eq!(err, SimError::TooManyProcs { procs: 65 });
}

// --------------------------------------------------------------------- cpu

/// A loop of always-missing informing loads with a counting miss handler.
fn informing_loop(iters: i64) -> Program {
    let mut a = Asm::new();
    let hdl = a.label("handler");
    let (ptr, v, i, n) = (Reg::int(1), Reg::int(2), Reg::int(3), Reg::int(4));
    a.set_mhar(hdl);
    a.li(ptr, 0x10_0000);
    a.li(i, 0);
    a.li(n, iters);
    let top = a.here("top");
    a.load_inf(v, ptr, 0);
    a.addi(ptr, ptr, 4096); // new line (and set) every iteration: always miss
    a.addi(i, i, 1);
    a.branch(Cond::Lt, i, n, top);
    a.halt();
    a.bind(hdl).expect("label is bound exactly once");
    a.addi(Reg::int(10), Reg::int(10), 1);
    a.jump_mhrr();
    a.assemble().expect("assembles")
}

fn overrun_plan(seed: u64, rate: f64, degrade_after: u32) -> FaultPlan {
    let mut c = FaultConfig::none(seed);
    c.handler_overrun_rate = rate;
    c.degrade_after = degrade_after;
    FaultPlan::new(c)
}

#[test]
fn handler_faults_are_deterministic_and_slow_the_machine() {
    let p = informing_loop(64);
    let cfg = OooConfig::paper();
    let limits = RunLimits::default();
    let base = ooo::simulate(&p, &cfg, limits).expect("runs");
    let plan = overrun_plan(3, 0.5, 0); // never degrade
    let a = ooo::simulate_faulty(&p, &cfg, limits, &plan).expect("runs");
    let b = ooo::simulate_faulty(&p, &cfg, limits, &plan).expect("runs");
    assert_eq!(a, b, "handler fault schedules must be reproducible");
    assert!(a.handler_faults > 0, "50% overrun rate over 64 traps must fire");
    assert!(!a.degraded, "degrade_after == 0 means never degrade");
    assert!(a.cycles > base.cycles, "overruns must cost cycles: {} vs {}", a.cycles, base.cycles);
    assert_eq!(a.instructions, base.instructions, "faults are timing-only");
}

#[test]
fn consecutive_handler_faults_degrade_gracefully() {
    let p = informing_loop(64);
    let cfg = OooConfig::paper();
    let limits = RunLimits::default();
    let base = ooo::simulate(&p, &cfg, limits).expect("runs");
    let r = ooo::simulate_faulty(&p, &cfg, limits, &overrun_plan(3, 1.0, 4)).expect("runs");
    assert!(r.degraded, "4 consecutive faults at rate 1.0 must degrade");
    assert_eq!(r.handler_faults, 4, "faults stop once traps are suppressed");
    assert_eq!(r.informing_traps, 4, "no informing traps after degradation");
    assert!(
        r.instructions < base.instructions,
        "suppressed traps skip handler instructions: {} vs {}",
        r.instructions,
        base.instructions
    );
}

#[test]
fn zero_fault_plan_is_cycle_identical_on_both_cpu_models() {
    let p = informing_loop(48);
    let limits = RunLimits::default();
    let none = FaultPlan::none();

    let ooo_base = ooo::simulate(&p, &OooConfig::paper(), limits).expect("runs");
    let ooo_faulty = ooo::simulate_faulty(&p, &OooConfig::paper(), limits, &none).expect("runs");
    assert_eq!(ooo_base, ooo_faulty);
    assert!(!ooo_faulty.degraded);

    let io_base = inorder::simulate(&p, &InOrderConfig::paper(), limits).expect("runs");
    let io_faulty =
        inorder::simulate_faulty(&p, &InOrderConfig::paper(), limits, &none).expect("runs");
    assert_eq!(io_base, io_faulty);
    assert_eq!(io_faulty.handler_faults, 0);
}

#[test]
fn stale_mhar_faults_stall_the_inorder_front_end() {
    let p = informing_loop(48);
    let cfg = InOrderConfig::paper();
    let limits = RunLimits::default();
    let base = inorder::simulate(&p, &cfg, limits).expect("runs");
    let mut c = FaultConfig::none(7);
    c.stale_mhar_rate = 1.0;
    c.degrade_after = 0;
    let r = inorder::simulate_faulty(&p, &cfg, limits, &FaultPlan::new(c)).expect("runs");
    assert!(r.handler_faults > 0);
    assert!(r.cycles > base.cycles, "MHAR reloads must stall fetch");
}
