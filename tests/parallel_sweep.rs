//! Integration proof for the deterministic parallel sweep engine: the same
//! seeded matrix must produce *identical* results (and identical baseline
//! JSON) at every thread count, worker panics must propagate, and the edge
//! cases (empty matrix, single cell) must hold.

use imo_bench::sweep::{cross2, SweepSpec};
use informing_memops::util::pool::Pool;
use informing_memops::util::rng::SmallRng;

/// A deterministic, seeded "simulation": enough mixing that any ordering
/// or indexing bug in the pool scrambles the output.
fn simulate_cell(seed: u64, steps: u64) -> u64 {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut acc = seed;
    for _ in 0..steps {
        acc = acc.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(17) ^ rng.next_u64();
    }
    acc
}

fn seeded_matrix() -> Vec<(u64, u64)> {
    let seeds: Vec<u64> = (0..13).map(|i| 0x1996 + i * 7).collect();
    let steps: Vec<u64> = vec![100, 1_000, 10_000];
    cross2(&seeds, &steps)
}

#[test]
fn sweep_results_identical_for_1_2_4_8_threads() {
    let reference: Vec<u64> = seeded_matrix().iter().map(|&(s, n)| simulate_cell(s, n)).collect();
    for threads in [1, 2, 4, 8] {
        let pool = Pool::new(threads);
        let got = SweepSpec::new("identity", seeded_matrix())
            .run_on(&pool, |_, (seed, steps)| simulate_cell(seed, steps));
        assert_eq!(got, reference, "results diverged at {threads} threads");
    }
}

#[test]
fn sweep_json_payload_is_byte_identical_across_thread_counts() {
    use informing_memops::util::json::Json;

    let render = |threads: usize| -> String {
        let rows = SweepSpec::new("payload", seeded_matrix()).run_on(
            &Pool::new(threads),
            |i, (seed, steps)| {
                Json::obj([
                    ("cell", Json::from(i as u64)),
                    ("seed", Json::from(seed)),
                    ("value", Json::from(simulate_cell(seed, steps))),
                ])
            },
        );
        Json::arr(rows).pretty()
    };
    let serial = render(1);
    for threads in [2, 4, 8] {
        assert_eq!(render(threads), serial, "JSON diverged at {threads} threads");
    }
}

#[test]
fn worker_panic_propagates_to_the_caller() {
    let result = std::panic::catch_unwind(|| {
        SweepSpec::new("panicky", (0..64).collect::<Vec<u32>>()).run_on(&Pool::new(4), |_, x| {
            assert!(x != 23, "injected failure in cell 23");
            x
        })
    });
    assert!(result.is_err(), "a cell panic must fail the whole sweep");
}

#[test]
fn empty_matrix_yields_empty_results() {
    let spec = SweepSpec::new("empty", Vec::<u64>::new());
    assert!(spec.matrix.is_empty());
    let out = spec.run_on(&Pool::new(4), |_, x| x);
    assert!(out.is_empty());
}

#[test]
fn single_cell_matrix_runs_and_preserves_the_cell() {
    let out = SweepSpec::new("single", vec![0x1996u64])
        .run_on(&Pool::new(8), |i, seed| (i, simulate_cell(seed, 100)));
    assert_eq!(out.len(), 1);
    assert_eq!(out[0], (0, simulate_cell(0x1996, 100)));
}

#[test]
fn thread_count_does_not_leak_into_results_via_indices() {
    // Indices passed to the cell function must be matrix positions, not
    // worker-local counters.
    let idx: Vec<usize> =
        SweepSpec::new("indices", (0..97u32).collect::<Vec<_>>()).run_on(&Pool::new(8), |i, _| i);
    assert_eq!(idx, (0..97).collect::<Vec<_>>());
}
