//! Cross-crate integration tests: the headline results of the paper, each
//! verified end-to-end through the full stack (workload kernel → binary
//! rewriting → cycle-level simulation), at test scale.

use informing_memops::core::experiment::{figure2_variants, run_experiment};
use informing_memops::core::instrument::{instrument, HandlerBody, HandlerKind, Scheme};
use informing_memops::core::Machine;
use informing_memops::cpu::{ooo, OooConfig, RunLimits, TrapModel};
use informing_memops::workloads::{all, by_name, Scale};

fn program_of(name: &str) -> informing_memops::isa::Program {
    (by_name(name).expect("workload exists").build)(Scale::Test)
}

#[test]
fn every_workload_runs_instrumented_on_both_machines() {
    let scheme =
        Scheme::Trap { handlers: HandlerKind::Single, body: HandlerBody::Generic { len: 1 } };
    for spec in all() {
        let p = (spec.build)(Scale::Test);
        let inst = instrument(&p, &scheme).expect("instruments");
        for machine in [Machine::default_ooo(), Machine::default_in_order()] {
            let r = machine
                .run(&inst.program)
                .unwrap_or_else(|e| panic!("{} on {}: {e}", spec.name, machine.name()));
            assert!(r.instructions > 1000, "{}: too little work", spec.name);
            assert_eq!(r.slots.total(), r.cycles * 4, "{}: slot accounting", spec.name);
        }
    }
}

#[test]
fn figure2_shape_single_handler_beats_unique_on_instructions() {
    // The single-handler configuration never executes more instructions
    // than the unique-handler one, for any workload (the setmhar tax).
    for name in ["compress", "alvinn"] {
        let p = program_of(name);
        let res = run_experiment(
            name,
            &p,
            &Machine::default_ooo(),
            &figure2_variants(),
            RunLimits::default(),
        )
        .expect("experiment runs");
        let by = |l: &str| res.raw.iter().find(|(x, _)| *x == l).unwrap().1;
        assert!(by("1S").instructions <= by("1U").instructions, "{name}");
        assert!(by("10S").instructions <= by("10U").instructions, "{name}");
        assert!(by("N").instructions <= by("1S").instructions, "{name}");
    }
}

#[test]
fn figure3_shape_su2cor_punishes_the_in_order_machine() {
    let p = program_of("su2cor");
    let variants = figure2_variants();
    let ooo_res =
        run_experiment("su2cor", &p, &Machine::default_ooo(), &variants, RunLimits::default())
            .expect("ooo runs");
    let ino_res =
        run_experiment("su2cor", &p, &Machine::default_in_order(), &variants, RunLimits::default())
            .expect("in-order runs");
    let bar = |r: &informing_memops::core::ExperimentResult, l: &str| {
        r.bars.iter().find(|b| b.label == l).unwrap().total
    };
    let ino_10s = bar(&ino_res, "10S");
    let ooo_10s = bar(&ooo_res, "10S");
    assert!(
        ino_10s > 2.0,
        "su2cor 10-instr handlers should blow up the in-order machine: {ino_10s}"
    );
    assert!(ooo_10s < 1.5, "but stay moderate out-of-order: {ooo_10s}");
}

#[test]
fn trap_as_exception_costs_more_and_gap_shrinks_with_handler_length() {
    let p = program_of("compress");
    let run = |trap_model: TrapModel, len: u32| {
        let scheme =
            Scheme::Trap { handlers: HandlerKind::Single, body: HandlerBody::Generic { len } };
        let inst = instrument(&p, &scheme).expect("instruments");
        let mut cfg = OooConfig::paper();
        cfg.trap_model = trap_model;
        ooo::simulate(&inst.program, &cfg, RunLimits::default()).expect("runs").cycles
    };
    let b1 = run(TrapModel::Branch, 1);
    let e1 = run(TrapModel::Exception, 1);
    let b10 = run(TrapModel::Branch, 10);
    let e10 = run(TrapModel::Exception, 10);
    assert!(e1 > b1, "exception treatment is slower (1-instr): {e1} vs {b1}");
    assert!(e10 > b10, "exception treatment is slower (10-instr): {e10} vs {b10}");
    let gap1 = e1 as f64 / b1 as f64;
    let gap10 = e10 as f64 / b10 as f64;
    assert!(
        gap1 > gap10,
        "the relative gap shrinks as handlers grow (paper: 9% -> 7%): {gap1:.3} vs {gap10:.3}"
    );
}

#[test]
fn zero_hit_overhead_of_the_single_trap_handler() {
    // ora barely misses: the single-handler trap scheme must cost (almost)
    // nothing, while the explicit condition-code check costs an instruction
    // per reference.
    let p = program_of("ora");
    let machine = Machine::default_ooo();
    let n = machine.run(&p).expect("baseline");
    let trap = instrument(
        &p,
        &Scheme::Trap { handlers: HandlerKind::Single, body: HandlerBody::Generic { len: 10 } },
    )
    .expect("instruments");
    let cc = instrument(
        &p,
        &Scheme::ConditionCode {
            handlers: HandlerKind::Single,
            body: HandlerBody::Generic { len: 10 },
        },
    )
    .expect("instruments");
    let rt = machine.run(&trap.program).expect("trap run");
    let rc = machine.run(&cc.program).expect("cc run");
    let trap_overhead = rt.cycles as f64 / n.cycles as f64;
    assert!(trap_overhead < 1.03, "trap scheme on hits ~free: {trap_overhead}");
    assert!(
        rc.instructions > rt.instructions,
        "the cc scheme fetches an explicit check per reference"
    );
}

#[test]
fn condition_code_and_trap_schemes_count_the_same_misses() {
    let p = program_of("espresso");
    let machine = Machine::default_in_order();
    let count = |scheme: &Scheme| {
        let inst = instrument(&p, scheme).expect("instruments");
        let (r, state) = machine.run_full(&inst.program).expect("runs");
        (state.int(informing_memops::core::instrument::COUNT_REG), r.informing_traps)
    };
    let (trap_count, trap_traps) =
        count(&Scheme::Trap { handlers: HandlerKind::Single, body: HandlerBody::CountInRegister });
    let (cc_count, cc_traps) = count(&Scheme::ConditionCode {
        handlers: HandlerKind::Single,
        body: HandlerBody::CountInRegister,
    });
    assert_eq!(trap_count, trap_traps);
    assert_eq!(cc_count, cc_traps);
    // The two mechanisms observe the same reference stream; the cc scheme's
    // extra bmiss instructions do not touch the data cache, so the counts
    // match exactly.
    assert_eq!(trap_count, cc_count);
}
