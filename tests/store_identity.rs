//! Robustness proof for the content-addressed on-disk sweep store
//! (DESIGN.md §14): a store entry can be torn, truncated, bit-flipped,
//! version-skewed, raced by concurrent writers, or deleted outright, and
//! [`Store::get`] must still return either the exact original payload or
//! `None` — never a different payload, never a panic. `None` falls back to
//! a deterministic recompute, so no corruption can alter a gated counter.

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use imo_bench::serve::{decode_result, result_json};
use informing_memops::util::json::Json;
use informing_memops::util::rng::SmallRng;
use informing_memops::util::snapshot;
use informing_memops::util::store::{Store, StoreMode, SCHEMA_VERSION};

static DIR_SEQ: AtomicU32 = AtomicU32::new(0);

/// A fresh private store directory under the system temp dir, removed on
/// drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let seq = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
        let p = std::env::temp_dir()
            .join(format!("imo-store-identity-{}-{seq}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&p);
        TempDir(p)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

/// A real simulator result payload, exactly as the sweep store persists it:
/// `ora` at test scale through the serve-layer `RunResult` wire codec.
fn real_run_payload() -> Json {
    use imo_core::instrument::{instrument, Scheme};
    use imo_core::Machine;
    use imo_cpu::RunLimits;
    use imo_workloads::{by_name, Scale};
    let spec = by_name("ora").expect("workload exists");
    let program = (spec.build)(Scale::Test);
    let inst = instrument(&program, &Scheme::None).expect("instruments");
    let machine = Machine::default_ooo();
    let result = machine.run_limited(&inst.program, RunLimits::default()).expect("runs");
    result_json(&result)
}

#[test]
fn real_result_payload_round_trips_bit_exactly() {
    let dir = TempDir::new("roundtrip");
    let store = Store::open(&dir.0, StoreMode::ReadWrite, 0x1996);
    let payload = real_run_payload();
    assert!(store.put("cpu-run/ora/test", &payload));
    let served = store.get("cpu-run/ora/test").expect("hit");
    assert_eq!(served, payload);
    // The decoded RunResult is bit-identical too (hex/bit-pattern codec).
    let a = decode_result(&payload).expect("decodes");
    let b = decode_result(&served).expect("decodes");
    assert_eq!(a, b);
}

#[test]
fn truncations_at_every_length_never_serve_a_wrong_payload() {
    let dir = TempDir::new("truncate");
    let store = Store::open(&dir.0, StoreMode::ReadWrite, 1);
    let payload = real_run_payload();
    let key = "cell/truncate";
    assert!(store.put(key, &payload));
    let text = fs::read_to_string(store.entry_path(key)).expect("entry exists");
    // Every strict prefix is a torn write the atomic rename is supposed to
    // prevent; even if one appeared, it must read as the exact original
    // payload (a prefix that only lost trailing whitespace still verifies)
    // or a miss — never a different value, never a panic.
    for len in 0..text.len() {
        fs::write(store.entry_path(key), &text[..len]).expect("truncate");
        if let Some(v) = store.get(key) {
            assert_eq!(v, payload, "prefix of {len} bytes served a different payload");
        }
        // A miss deleted the torn file; either way restore for the next
        // length.
        assert!(store.put(key, &payload));
    }
    assert_eq!(store.get(key), Some(payload));
}

#[test]
fn wrong_version_envelope_is_rejected_and_repaired() {
    let dir = TempDir::new("version");
    let store = Store::open(&dir.0, StoreMode::ReadWrite, 2);
    let payload = Json::obj([("v", snapshot::u64_json(7))]);
    assert!(store.put("k", &payload));
    let path = store.entry_path("k");
    let text = fs::read_to_string(&path).expect("entry exists");
    let skewed = text.replace(&format!("\"version\": {SCHEMA_VERSION}"), "\"version\": 99");
    assert_ne!(skewed, text, "version field present to skew");
    fs::write(&path, skewed).expect("rewrite");
    assert_eq!(store.get("k"), None);
    assert!(!path.exists(), "read-write store deletes the skewed entry");
    assert!(store.put("k", &payload), "repair path writes again");
    assert_eq!(store.get("k"), Some(payload));
}

#[test]
fn concurrent_writers_racing_one_key_never_tear() {
    let dir = TempDir::new("race");
    let base = real_run_payload();
    // Two distinct but individually valid payloads racing the same key —
    // readers must only ever observe one of them, whole.
    let p1 = Arc::new(base.clone());
    let p2 = Arc::new(Json::obj([("alt", base)]));
    let key = "cell/raced";
    let writers: Vec<_> = [Arc::clone(&p1), Arc::clone(&p2)]
        .into_iter()
        .map(|payload| {
            let dir = dir.0.clone();
            std::thread::spawn(move || {
                // Each writer is its own Store handle, like two processes.
                let store = Store::open(&dir, StoreMode::ReadWrite, 3);
                for _ in 0..200 {
                    assert!(store.put(key, &payload));
                }
            })
        })
        .collect();
    let reader = {
        let dir = dir.0.clone();
        let (p1, p2) = (Arc::clone(&p1), Arc::clone(&p2));
        std::thread::spawn(move || {
            let store = Store::open(&dir, StoreMode::ReadOnly, 3);
            let mut observed = 0u32;
            for _ in 0..400 {
                if let Some(v) = store.get(key) {
                    assert!(v == *p1 || v == *p2, "reader saw a payload nobody wrote");
                    observed += 1;
                }
            }
            observed
        })
    };
    for w in writers {
        w.join().expect("writer thread");
    }
    let observed = reader.join().expect("reader thread");
    assert!(observed > 0, "reader never saw a value despite 400 writes");
    let final_value = Store::open(&dir.0, StoreMode::ReadOnly, 3).get(key).expect("final value");
    assert!(final_value == *p1 || final_value == *p2);
}

#[test]
fn seeded_corruption_sweep_returns_original_or_nothing() {
    let dir = TempDir::new("sweep");
    let store = Store::open(&dir.0, StoreMode::ReadWrite, 4);
    let payloads: Vec<(String, Json)> = (0..24u64)
        .map(|i| {
            let key = format!("cell/corrupt-{i}");
            let payload = Json::obj([
                ("cycles", snapshot::u64_json(0x1996 + i)),
                ("miss_bits", snapshot::u64_json(i.wrapping_mul(0x9e37_79b9))),
                ("label", Json::from(format!("cell-{i}").as_str())),
            ]);
            (key, payload)
        })
        .collect();

    let mut rng = SmallRng::seed_from_u64(0x1996_0809);
    for (key, payload) in &payloads {
        assert!(store.put(key, payload));
        let path = store.entry_path(key);
        let original = fs::read(&path).expect("entry bytes");
        for round in 0..16 {
            // A fresh copy each round, then one seeded mutation.
            let mut bytes = original.clone();
            match rng.next_u64() % 4 {
                0 => bytes.truncate((rng.next_u64() as usize) % bytes.len().max(1)),
                1 => {
                    let at = (rng.next_u64() as usize) % bytes.len();
                    bytes[at] ^= 1 << (rng.next_u64() % 8);
                }
                2 => {
                    for b in &mut bytes {
                        *b = rng.next_u64() as u8;
                    }
                }
                _ => bytes.clear(),
            }
            fs::write(&path, &bytes).expect("corrupt");
            // The only acceptable outcomes: the exact original payload
            // (mutation hit insignificant whitespace) or a miss that falls
            // back to recompute. Anything else would alter a gated counter.
            match store.get(key) {
                Some(v) => assert_eq!(&v, payload, "round {round}: corrupted {key} changed"),
                None => {
                    // Repair: recompute-and-put restores service.
                    assert!(store.put(key, payload));
                    assert_eq!(store.get(key), Some(payload.clone()));
                }
            }
            fs::write(&path, &original).expect("restore");
        }
    }
}

#[test]
fn deleted_entries_and_missing_directories_are_plain_misses() {
    let dir = TempDir::new("missing");
    let store = Store::open(&dir.0, StoreMode::ReadWrite, 5);
    assert_eq!(store.get("never-written"), None, "missing directory tree");
    let payload = Json::obj([("v", snapshot::u64_json(1))]);
    assert!(store.put("k", &payload));
    fs::remove_file(store.entry_path("k")).expect("delete entry");
    assert_eq!(store.get("k"), None);
    let stats = store.stats();
    assert_eq!(stats.rejected, 0, "a deleted entry is a miss, not corruption");
    assert_eq!(stats.misses, 2);
}
