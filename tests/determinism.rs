//! Guards the in-tree PRNG swap: every experiment runner must be a pure
//! function of its seed. Two runs with identical inputs have to produce
//! *identical* results — any divergence means hidden state (HashMap
//! iteration order, wall-clock, ...) leaked into the simulation.

use imo_bench::{fig2_for, fig4_rows};
use informing_memops::coherence::MachineParams;
use informing_memops::core::experiment::figure2_variants;
use informing_memops::workloads::parallel::TraceConfig;
use informing_memops::workloads::Scale;

#[test]
fn fig2_runner_is_deterministic() {
    let variants = figure2_variants();
    let a = fig2_for("ora", Scale::Test, &variants);
    let b = fig2_for("ora", Scale::Test, &variants);
    assert_eq!(a, b, "fig2_for must be reproducible run-to-run");
    // And byte-identical through the JSON path used for BENCH_fig2.json.
    let ja = imo_bench::experiments_to_json(&a).pretty();
    let jb = imo_bench::experiments_to_json(&b).pretty();
    assert_eq!(ja, jb);
}

#[test]
fn fig4_runner_is_deterministic_per_seed() {
    let cfg = TraceConfig { procs: 4, ops_per_proc: 1200, seed: 7 };
    let params = MachineParams::table2();
    let a = fig4_rows(&cfg, &params);
    let b = fig4_rows(&cfg, &params);
    assert_eq!(a, b, "fig4_rows must be reproducible for a fixed seed");
    assert_eq!(imo_bench::fig4_to_json(&a).pretty(), imo_bench::fig4_to_json(&b).pretty());

    // A different seed must actually change the generated traces — otherwise
    // the "determinism" above would be vacuous.
    let other = TraceConfig { seed: 8, ..cfg };
    let c = fig4_rows(&other, &params);
    assert_ne!(a, c, "the trace seed must influence the simulation");
}
