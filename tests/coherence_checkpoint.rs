//! Coherence checkpoint identity: pausing a 16-processor coherence run at an
//! op boundary and resuming it — in-process, across the JSON wire, or in a
//! freshly spawned process — is invisible to the simulation.
//!
//! The coherence twin of `tests/checkpoint_identity.rs`: every test demands
//! that a resumed run's [`SimResult`] is bit-identical to the uninterrupted
//! one — completion time, per-processor finish times, protocol actions,
//! invalidations, and (under an injected-faulty interconnect) the retry,
//! timeout, and NACK counters. The matrix must include pauses taken
//! mid-protocol, with NACK/retry traffic in flight on both sides of the
//! checkpoint.

use std::process::Command;

use informing_memops::coherence::{
    simulate_faulty, CohCheckpoint, CohOutcome, CohSession, MachineParams, Scheme,
};
use informing_memops::faults::{FaultConfig, FaultPlan};
use informing_memops::util::json::{parse, Json};
use informing_memops::util::snapshot::{self, Snapshot};
use informing_memops::workloads::parallel::{
    migratory, producer_consumer, readmostly, reduction, stencil, ParallelTrace, TraceConfig,
};

type AppBuilder = fn(&TraceConfig) -> ParallelTrace;

fn apps() -> [(&'static str, AppBuilder); 5] {
    [
        ("stencil", stencil),
        ("migratory", migratory),
        ("producer_consumer", producer_consumer),
        ("reduction", reduction),
        ("readmostly", readmostly),
    ]
}

/// A drop/dup/delay-heavy interconnect plus ECC noise: every scheme sees
/// NACKed duplicates, timed-out retries, and line-recall scrubbing.
fn stormy_plan(seed: u64) -> FaultPlan {
    let mut c = FaultConfig::none(seed);
    c.drop_rate = 0.05;
    c.dup_rate = 0.05;
    c.delay_rate = 0.05;
    c.ecc_single_rate = 0.05;
    c.ecc_double_rate = 0.02;
    FaultPlan::new(c)
}

/// Serializes a checkpoint to pretty JSON text and decodes it back, as a
/// worker process handing work to another would.
fn wire_trip(ckpt: &CohCheckpoint) -> (CohCheckpoint, Json) {
    let text = ckpt.to_wire().pretty();
    let json = parse(&text).expect("checkpoint wire text parses");
    let back = CohCheckpoint::from_wire(&json).expect("checkpoint wire decodes");
    assert_eq!(back.to_wire().pretty(), text, "re-encoding is byte-stable");
    (back, json)
}

/// Directory requests re-sent so far, read off the checkpoint wire (index 7
/// of the `counts` block — the order [`SimResult`]'s codec fixes).
fn retries_on_wire(wire: &Json) -> u64 {
    let body = wire.get("data").and_then(|d| d.get("body")).expect("wire carries a body");
    snapshot::get_u64s(body, "counts").expect("counts decode")[7]
}

/// All 5 parallel apps x both access-control schemes under a stormy
/// interconnect: pause at the midpoint, cross the JSON wire, resume, and
/// land on the uninterrupted result bit-for-bit. The matrix must include
/// pauses with retry traffic already suffered *and* still to come — the
/// checkpoint splits an in-flight NACK/retry schedule, not just clean
/// protocol quiescence.
#[test]
fn all_apps_schemes_resume_bit_identically() {
    let cfg = TraceConfig { procs: 8, ops_per_proc: 1_500, seed: 11 };
    let params = MachineParams::table2();
    let mut paused = 0u32;
    let mut mid_retry_pauses = 0u32;
    for (name, build) in apps() {
        let trace = build(&cfg);
        for scheme in [Scheme::Ecc, Scheme::Informing] {
            let plan = stormy_plan(7);
            let full = simulate_faulty(&trace, scheme, &params, &plan)
                .unwrap_or_else(|e| panic!("{name}/{scheme:?}: {e}"));
            assert!(full.retries > 0, "{name}/{scheme:?}: plan must exercise the retry path");
            let sess = CohSession::new(&trace, scheme, params).faults(plan);
            let ckpt = match sess.stop_at(full.ops / 2).run().expect("bounded run pauses") {
                CohOutcome::Paused(c) => c,
                CohOutcome::Complete(_) => panic!("{name}: midpoint is before the end"),
            };
            paused += 1;
            let (back, wire) = wire_trip(&ckpt);
            let mid_retries = retries_on_wire(&wire);
            if mid_retries > 0 && mid_retries < full.retries {
                mid_retry_pauses += 1;
            }
            match sess.stop_at(u64::MAX).resume(&back).expect("resume completes") {
                CohOutcome::Complete(r) => assert_eq!(
                    r, full,
                    "{name}/{scheme:?}: checkpoint/resume must not change the simulation"
                ),
                CohOutcome::Paused(_) => panic!("{name}: unbounded resume must finish"),
            }
        }
    }
    assert_eq!(paused, 10, "the whole matrix must pause");
    assert!(mid_retry_pauses > 0, "at least one checkpoint must split an in-flight retry schedule");
}

/// Micro-slicing: resuming every 97 ops (a boundary that never aligns with
/// the fault schedule) through dozens of wire trips still lands exactly on
/// the uninterrupted result.
#[test]
fn chained_micro_slices_resume_bit_identically() {
    let cfg = TraceConfig { procs: 8, ops_per_proc: 400, seed: 23 };
    let trace = producer_consumer(&cfg);
    let params = MachineParams::table2();
    let plan = stormy_plan(5);
    let full = simulate_faulty(&trace, Scheme::Informing, &params, &plan).expect("completes");
    let sess = CohSession::new(&trace, Scheme::Informing, params).faults(plan);
    let mut stop = 97u64;
    let mut outcome = sess.stop_at(stop).run().expect("runs");
    let mut pauses = 0u32;
    let r = loop {
        match outcome {
            CohOutcome::Complete(r) => break r,
            CohOutcome::Paused(c) => {
                pauses += 1;
                stop += 97;
                let (back, _) = wire_trip(&c);
                outcome = sess.stop_at(stop).resume(&back).expect("resumes");
            }
        }
    };
    assert!(pauses >= 30, "3200 ops in 97-op slices: only {pauses} pauses");
    assert_eq!(r, full, "micro-sliced run must equal the straight run");
}

// ---------------------------------------------------------------------------
// Fresh-process resume: the checkpoint crosses a real process boundary.
// ---------------------------------------------------------------------------

/// The one configuration the parent and the child both rebuild from
/// constants. The checkpoint's `cfg_hash` binds to it, so the resume in the
/// child doubles as a regression test for cross-process configuration-hash
/// determinism (session hashes must not depend on process-local state).
fn fresh_process_fixture() -> (ParallelTrace, Scheme, MachineParams, FaultPlan) {
    let cfg = TraceConfig { procs: 8, ops_per_proc: 1_000, seed: 31 };
    (migratory(&cfg), Scheme::Informing, MachineParams::table2(), stormy_plan(13))
}

const CHILD_IN: &str = "IMO_COH_CHILD_IN";
const CHILD_OUT: &str = "IMO_COH_CHILD_OUT";

/// Child half of `fresh_process_resume_is_bit_identical`: under the normal
/// test run (no env vars) this is a no-op. When re-executed by the parent it
/// decodes the checkpoint from `IMO_COH_CHILD_IN`, resumes it in this —
/// fresh — process, and writes the result's compact JSON to
/// `IMO_COH_CHILD_OUT`.
#[test]
fn fresh_process_resume_child() {
    let (Ok(inp), Ok(out)) = (std::env::var(CHILD_IN), std::env::var(CHILD_OUT)) else {
        return;
    };
    let text = std::fs::read_to_string(&inp).expect("child reads checkpoint");
    let ckpt = CohCheckpoint::from_wire(&parse(&text).expect("child parses checkpoint"))
        .expect("child decodes checkpoint");
    let (trace, scheme, params, plan) = fresh_process_fixture();
    let sess = CohSession::new(&trace, scheme, params).faults(plan);
    let r = match sess.stop_at(u64::MAX).resume(&ckpt).expect("child resumes") {
        CohOutcome::Complete(r) => r,
        CohOutcome::Paused(_) => panic!("child: unbounded resume must finish"),
    };
    let json = imo_bench::serve::cell_result_json(&imo_bench::serve::CellResult::Coh(r));
    std::fs::write(&out, json.compact()).expect("child writes result");
}

/// Pause mid-protocol (with retry traffic in flight), ship the checkpoint to
/// a freshly spawned process, resume there, and demand the child's result is
/// byte-identical to the uninterrupted in-process run — the exact handoff an
/// `imo-serve` worker respawn performs after a crash.
#[test]
fn fresh_process_resume_is_bit_identical() {
    let (trace, scheme, params, plan) = fresh_process_fixture();
    let full = simulate_faulty(&trace, scheme, &params, &plan).expect("completes");
    assert!(full.retries > 0, "fixture must exercise the retry path");
    let expected =
        imo_bench::serve::cell_result_json(&imo_bench::serve::CellResult::Coh(full.clone()))
            .compact();

    let sess = CohSession::new(&trace, scheme, params).faults(plan);
    let ckpt = match sess.stop_at(full.ops / 2).run().expect("bounded run pauses") {
        CohOutcome::Paused(c) => c,
        CohOutcome::Complete(_) => panic!("midpoint is before the end"),
    };

    let dir = std::env::temp_dir();
    let inp = dir.join(format!("imo_coh_ckpt_{}.json", std::process::id()));
    let out = dir.join(format!("imo_coh_result_{}.json", std::process::id()));
    std::fs::write(&inp, ckpt.to_wire().pretty()).expect("parent writes checkpoint");
    let _ = std::fs::remove_file(&out);

    let status = Command::new(std::env::current_exe().expect("current_exe"))
        .args(["--exact", "fresh_process_resume_child", "--nocapture"])
        .env(CHILD_IN, &inp)
        .env(CHILD_OUT, &out)
        .status()
        .expect("spawning the child test process");
    assert!(status.success(), "child resume process failed");

    let got = std::fs::read_to_string(&out).expect("child wrote a result");
    assert_eq!(got, expected, "fresh-process resume must be byte-identical");
    let _ = std::fs::remove_file(&inp);
    let _ = std::fs::remove_file(&out);
}
