//! Integration tests for the §4.1 software techniques, end-to-end at test
//! scale: profiling, adaptive prefetching, software multithreading, and the
//! §4.3 access-control comparison.

use informing_memops::coherence::{simulate_baseline, MachineParams, Scheme as AcScheme};
use informing_memops::core::multithread::{evaluate_multithreading, MultithreadDemo};
use informing_memops::core::prefetch::evaluate_prefetching;
use informing_memops::core::profile::profile_misses;
use informing_memops::core::Machine;
use informing_memops::workloads::parallel::{all_apps, TraceConfig};
use informing_memops::workloads::{by_name, Scale};

#[test]
fn profiler_attributes_nearly_all_machine_misses() {
    // §4.1.1: the per-reference profile must account for (almost) every miss
    // the machine counted — the residue is handler-induced perturbation.
    let p = (by_name("compress").unwrap().build)(Scale::Test);
    let prof = profile_misses(&p, &Machine::default_ooo()).expect("profiles");
    let attributed = prof.total_misses() as f64;
    let counted = prof.run.mem.l1d_misses as f64;
    let ratio = attributed / counted;
    assert!((0.8..=1.05).contains(&ratio), "attributed/counted = {ratio}");
}

#[test]
fn profiler_overhead_is_below_the_papers_bound() {
    // §4.1.1: "precise per-reference miss rates with low runtime overheads
    // (less than 25%)".
    for name in ["compress", "espresso", "alvinn"] {
        let p = (by_name(name).unwrap().build)(Scale::Test);
        let machine = Machine::default_ooo();
        let base = machine.run(&p).expect("baseline");
        let prof = profile_misses(&p, &machine).expect("profiles");
        let overhead = prof.run.cycles as f64 / base.cycles as f64;
        assert!(overhead < 1.25, "{name}: overhead {overhead}");
    }
}

#[test]
fn adaptive_prefetching_helps_streams_and_hurts_chases() {
    let machine = Machine::default_ooo();
    let stream = (by_name("alvinn").unwrap().build)(Scale::Test);
    let cmp = evaluate_prefetching(&stream, &machine, 2).expect("evaluates");
    assert!(cmp.speedup() > 1.1, "alvinn speedup {}", cmp.speedup());
    assert!(cmp.miss_reduction() > 0.3, "alvinn misses drop: {}", cmp.miss_reduction());

    // A pointer chase is actively *hurt*: every hop misses, the handler's
    // next-line prefetches are useless, and their memory-bandwidth
    // consumption delays the demand misses behind them. This is the paper's
    // §4.1.2 point — prefetch handlers must be deployed selectively (e.g.
    // per-reference handlers only at streaming sites), which the informing
    // mechanism makes possible.
    let chase = (by_name("xlisp").unwrap().build)(Scale::Test);
    let cmp = evaluate_prefetching(&chase, &machine, 2).expect("evaluates");
    assert!(
        cmp.speedup() < 1.0,
        "useless prefetches cost bandwidth on a dependent chain: {}",
        cmp.speedup()
    );
    assert!(cmp.miss_reduction() < 0.05, "no chase miss is eliminated");
}

#[test]
fn multithreading_overlaps_dependent_misses() {
    let demo = MultithreadDemo { iters_per_thread: 150, stride: 4096, rounds: 1, save_restore: 0 };
    let cmp = evaluate_multithreading(&demo, &Machine::default_ooo()).expect("evaluates");
    assert!(cmp.speedup() > 1.4, "speedup {}", cmp.speedup());
    assert!(cmp.switching.informing_traps >= 250, "both chains trap throughout");
}

#[test]
fn access_control_summary_matches_the_papers_ordering() {
    let cfg = TraceConfig { procs: 8, ops_per_proc: 8_000, seed: 5 };
    let params = MachineParams::table2();
    let mut rc_total = 0.0;
    let mut ecc_total = 0.0;
    let mut n = 0.0;
    for app in all_apps(&cfg) {
        let inf = simulate_baseline(&app, AcScheme::Informing, &params).total_cycles as f64;
        let rc = simulate_baseline(&app, AcScheme::RefCheck, &params).total_cycles as f64;
        let ecc = simulate_baseline(&app, AcScheme::Ecc, &params).total_cycles as f64;
        assert!(inf <= rc && inf <= ecc, "{}: informing must win", app.name);
        rc_total += rc / inf;
        ecc_total += ecc / inf;
        n += 1.0;
    }
    // The paper reports 24% and 18% average advantages; we require the same
    // ordering with a clearly positive margin.
    let rc_adv = rc_total / n - 1.0;
    let ecc_adv = ecc_total / n - 1.0;
    assert!(rc_adv > 0.05, "average advantage over ref-check: {rc_adv}");
    assert!(ecc_adv > 0.03, "average advantage over ECC: {ecc_adv}");
}
