//! Checkpoint identity: pausing a run at a cycle boundary and resuming it —
//! in-process or from the JSON wire — is invisible to the simulation.
//!
//! `RunLimits::stop_at(c)` makes a `SimSession` run halt at the first cycle
//! boundary at or after `c` and emit a [`Checkpoint`] instead of a result.
//! Every test here demands that resuming the checkpoint produces a
//! `RunResult` bit-identical to the uninterrupted run: counters, slot
//! accounting, trap and misprediction totals, branch accuracy, all of it.
//! The observed variants additionally demand that the CPI stack of a resumed
//! run reconciles exactly with the uninterrupted one (and therefore with
//! `RunResult::cycles`).

use imo_faults::{FaultConfig, FaultPlan};
use imo_util::check::Checker;
use imo_util::ensure_eq;
use imo_util::snapshot::Snapshot;
use informing_memops::core::instrument::{instrument, HandlerBody, HandlerKind, Scheme};
use informing_memops::core::Machine;
use informing_memops::cpu::{Checkpoint, Outcome, RunLimits, RunResult, SimSession};
use informing_memops::obs::Recorder;
use informing_memops::util::json::{parse, Json};
use informing_memops::workloads::{all, by_name, Scale};

fn schemes() -> [(&'static str, Scheme); 3] {
    let body = HandlerBody::Generic { len: 10 };
    [
        ("none", Scheme::None),
        ("trap-10S", Scheme::Trap { handlers: HandlerKind::Single, body }),
        ("cc-10S", Scheme::ConditionCode { handlers: HandlerKind::Single, body }),
    ]
}

/// Serializes a checkpoint to pretty JSON text and decodes it back, as a
/// worker process handing work to another would.
fn wire_trip(ckpt: &Checkpoint) -> (Checkpoint, Json) {
    let text = ckpt.to_wire().pretty();
    let json = parse(&text).expect("checkpoint wire text parses");
    let back = Checkpoint::from_wire(&json).expect("checkpoint wire decodes");
    assert_eq!(back.to_wire().pretty(), text, "re-encoding is byte-stable");
    (back, json)
}

/// True if the checkpoint was taken mid-miss: the out-of-order core's MSHR
/// file has at least one non-free entry on the wire.
fn mshrs_in_flight(wire: &Json) -> bool {
    let states = wire
        .get("data")
        .and_then(|d| d.get("body"))
        .and_then(|b| b.get("mshrs"))
        .and_then(|m| m.get("data"))
        .and_then(|d| d.get("states"))
        .and_then(Json::as_str);
    states.is_some_and(|s| s.bytes().any(|b| b != b'0'))
}

/// All 14 workloads x both machines x 3 schemes: pause at mid-run, cross the
/// JSON wire, resume, and land on the uninterrupted result bit-for-bit. The
/// matrix must include checkpoints taken with MSHRs in flight.
#[test]
fn all_workloads_machines_schemes_resume_bit_identically() {
    let mut paused_cells = 0u32;
    let mut mid_miss_cells = 0u32;
    for spec in all() {
        let p = (spec.build)(Scale::Test);
        for (label, scheme) in &schemes() {
            let inst = instrument(&p, scheme).expect("instruments");
            for machine in [Machine::default_ooo(), Machine::default_in_order()] {
                let baseline = machine
                    .run_limited(&inst.program, RunLimits::default())
                    .unwrap_or_else(|e| panic!("{}/{label}: {e}", spec.name));
                let outcome = SimSession::new(&inst.program, machine.core_config())
                    .limits(RunLimits::stop_at(baseline.cycles / 2))
                    .run()
                    .unwrap_or_else(|e| panic!("{}/{label} (stop): {e}", spec.name));
                let resumed = match outcome {
                    Outcome::Paused(ckpt) => {
                        paused_cells += 1;
                        let (back, wire) = wire_trip(&ckpt);
                        if machine == Machine::default_ooo() && mshrs_in_flight(&wire) {
                            mid_miss_cells += 1;
                        }
                        complete(
                            SimSession::new(&inst.program, machine.core_config())
                                .resume(&back)
                                .unwrap_or_else(|e| panic!("{}/{label} (resume): {e}", spec.name)),
                        )
                    }
                    // Tiny runs can finish before the midpoint boundary.
                    Outcome::Complete { result, .. } => result,
                };
                assert_eq!(
                    resumed,
                    baseline,
                    "{}/{}/{label}: checkpoint/resume must not change the simulation",
                    spec.name,
                    machine.name()
                );
            }
        }
    }
    assert!(paused_cells > 50, "the matrix must actually exercise pauses ({paused_cells})");
    assert!(
        mid_miss_cells > 0,
        "at least one checkpoint must be taken mid-miss with MSHRs in flight"
    );
}

fn complete(outcome: Outcome) -> RunResult {
    match outcome {
        Outcome::Complete { result, .. } => result,
        Outcome::Paused(c) => panic!("unexpected second pause at cycle {}", c.cycle()),
    }
}

/// Observed runs: a resumed run's CPI stack must equal the uninterrupted
/// run's exactly, and both must total `RunResult::cycles`.
#[test]
fn observed_resume_reconciles_cpi_exactly() {
    let p = (by_name("compress").expect("workload exists").build)(Scale::Test);
    let scheme =
        Scheme::Trap { handlers: HandlerKind::Single, body: HandlerBody::Generic { len: 10 } };
    let inst = instrument(&p, &scheme).expect("instruments");
    for machine in [Machine::default_ooo(), Machine::default_in_order()] {
        let mut base_rec = Recorder::all();
        let (baseline, _) =
            machine.run_observed(&inst.program, &mut base_rec).expect("observed baseline");
        assert_eq!(base_rec.cpi.total(), baseline.cycles, "baseline CPI covers every cycle");

        let mut first_rec = Recorder::all();
        let outcome = SimSession::new(&inst.program, machine.core_config())
            .limits(RunLimits::stop_at(baseline.cycles / 2))
            .recorder(&mut first_rec)
            .run()
            .expect("observed run pauses");
        let Outcome::Paused(ckpt) = outcome else { panic!("must pause at midpoint") };

        let mut resume_rec = Recorder::all();
        let resumed = complete(
            SimSession::new(&inst.program, machine.core_config())
                .recorder(&mut resume_rec)
                .resume(&ckpt)
                .expect("observed resume completes"),
        );
        assert_eq!(resumed, baseline, "{}: observed resume result", machine.name());
        // The CPI accumulator rides inside the checkpoint, so the recorder
        // that witnesses completion reconciles the *whole* run, not just the
        // tail: stack equality is exact, category by category.
        assert_eq!(resume_rec.cpi, base_rec.cpi, "{}: CPI stacks reconcile", machine.name());
        assert_eq!(resume_rec.cpi.total(), resumed.cycles, "{}: CPI total", machine.name());
    }
}

/// Fault injection rides the same loops: three seeded plans pause mid-run
/// (mid-fault-stream) on both cores, cross the wire, and resume identically.
#[test]
fn seeded_faulty_checkpoints_resume_identically() {
    let p = (by_name("compress").expect("workload exists").build)(Scale::Test);
    let scheme =
        Scheme::Trap { handlers: HandlerKind::Single, body: HandlerBody::Generic { len: 10 } };
    let inst = instrument(&p, &scheme).expect("instruments");
    for seed in [1u64, 2, 3] {
        let mut fc = FaultConfig::none(seed);
        fc.handler_overrun_rate = 0.2;
        fc.handler_overrun_cycles = 40;
        fc.stale_mhar_rate = 0.1;
        fc.stale_mhar_cycles = 25;
        let plan = FaultPlan::new(fc);
        for machine in [Machine::default_ooo(), Machine::default_in_order()] {
            let baseline = complete(
                SimSession::new(&inst.program, machine.core_config())
                    .faults(plan)
                    .run()
                    .expect("faulty baseline"),
            );
            assert!(baseline.handler_faults > 0, "seed {seed} must actually inject faults");
            let outcome = SimSession::new(&inst.program, machine.core_config())
                .faults(plan)
                .limits(RunLimits::stop_at(baseline.cycles / 2))
                .run()
                .expect("faulty run pauses");
            let Outcome::Paused(ckpt) = outcome else { panic!("must pause at midpoint") };
            let (back, _) = wire_trip(&ckpt);
            let resumed = complete(
                SimSession::new(&inst.program, machine.core_config())
                    .faults(plan)
                    .resume(&back)
                    .expect("faulty resume completes"),
            );
            assert_eq!(resumed, baseline, "seed {seed} on {}", machine.name());
        }
    }
}

/// Pauses landing inside the fast path's split plain-run queue: the compact
/// run descriptors must rematerialize into the exact fetch-queue entries the
/// generic loop would hold, byte-stably across the wire, and resume onto the
/// uninterrupted result — probed at a dense band of consecutive stop cycles
/// so some checkpoints are guaranteed to catch partially drained runs
/// mid-block.
#[test]
fn fast_path_pauses_with_plain_runs_pending_resume_identically() {
    let p = (by_name("mdljsp2").expect("workload exists").build)(Scale::Test);
    for machine in [Machine::default_in_order(), Machine::default_ooo()] {
        let baseline = machine.run_limited(&p, RunLimits::default()).expect("uninterrupted run");
        let mid = baseline.cycles / 2;
        // A dense band of consecutive boundaries plus spread-out points:
        // consecutive stops cannot all land on run boundaries.
        let stops: Vec<u64> =
            (mid..mid + 8).chain([baseline.cycles / 4, 3 * baseline.cycles / 4]).collect();
        for stop in stops {
            let outcome = SimSession::new(&p, machine.core_config())
                .limits(RunLimits::stop_at(stop))
                .run()
                .expect("paused run");
            let Outcome::Paused(ckpt) = outcome else {
                panic!("{}: run must pause at {stop}", machine.name())
            };
            let (back, _) = wire_trip(&ckpt);
            let resumed = complete(
                SimSession::new(&p, machine.core_config()).resume(&back).expect("resume completes"),
            );
            assert_eq!(
                resumed,
                baseline,
                "{}: pause at {stop} with plain runs pending",
                machine.name()
            );
        }
    }
}

/// 32 random (workload, scheme, machine, stop-cycle) draws: arbitrary cycle
/// boundaries, not just the midpoint, resume bit-identically.
#[test]
fn random_stop_cycles_resume_identically() {
    let names: Vec<&'static str> = all().iter().map(|s| s.name).collect();
    Checker::new("checkpoint_identity_random").cases(32).run(|g| {
        let name = *g.pick(&names);
        let p = (by_name(name).expect("workload exists").build)(Scale::Test);
        let handlers = *g.pick(&[HandlerKind::Single, HandlerKind::PerReference]);
        let body = HandlerBody::Generic { len: *g.pick(&[1u32, 10, 100]) };
        let scheme = *g.pick(&[
            Scheme::None,
            Scheme::Trap { handlers, body },
            Scheme::ConditionCode { handlers, body },
        ]);
        let inst = instrument(&p, &scheme).map_err(|e| format!("{name}: {e}"))?;
        let machine = if g.bool() { Machine::default_ooo() } else { Machine::default_in_order() };
        let baseline = machine
            .run_limited(&inst.program, RunLimits::default())
            .map_err(|e| format!("{name} on {}: {e}", machine.name()))?;
        let stop = g.int(1..baseline.cycles.max(2));
        let outcome = SimSession::new(&inst.program, machine.core_config())
            .limits(RunLimits::stop_at(stop))
            .run()
            .map_err(|e| format!("{name} stop {stop}: {e}"))?;
        let resumed = match outcome {
            Outcome::Paused(ckpt) => {
                ensure_eq!(ckpt.cycle() >= stop, true, "{name}: pause respects the boundary");
                let (back, _) = wire_trip(&ckpt);
                match SimSession::new(&inst.program, machine.core_config())
                    .resume(&back)
                    .map_err(|e| format!("{name} resume: {e}"))?
                {
                    Outcome::Complete { result, .. } => result,
                    Outcome::Paused(c) => {
                        return Err(format!("{name}: second pause at {}", c.cycle()))
                    }
                }
            }
            Outcome::Complete { result, .. } => result,
        };
        ensure_eq!(resumed, baseline, "{name} on {} stopped at {stop}", machine.name());
        Ok(())
    });
}
