//! Guards the observability subsystem's two core contracts:
//!
//! 1. **Exact CPI reconciliation** — the recorder's CPI stack must total
//!    `RunResult::cycles` (or `SimResult::total_cycles`) *exactly*, for
//!    every tier-1 workload on both machines and for the coherence
//!    simulator, with and without injected faults.
//! 2. **Passivity** — the recorder must never feed back into timing: a run
//!    under a disabled (or any) recorder returns results bit-identical to
//!    the unobserved run, and exports are byte-identical run-to-run.

use informing_memops::coherence::{
    simulate_baseline, simulate_observed as coh_observed, MachineParams, Scheme,
};
use informing_memops::cpu::{inorder, ooo, InOrderConfig, OooConfig, RunLimits};
use informing_memops::faults::{FaultConfig, FaultPlan};
use informing_memops::obs::{chrome_trace, Category, CategoryMask, Recorder};
use informing_memops::workloads::parallel::{migratory, TraceConfig};
use informing_memops::workloads::spec;
use informing_memops::workloads::Scale;

#[test]
fn cpi_stack_reconciles_exactly_on_every_workload_and_machine() {
    for s in spec::all() {
        let p = (s.build)(Scale::Test);

        let mut rec = Recorder::all();
        let (res, _) =
            ooo::simulate_observed(&p, &OooConfig::paper(), RunLimits::default(), &mut rec)
                .expect("ooo simulates");
        assert_eq!(
            rec.cpi.total(),
            res.cycles,
            "{}/ooo: CPI stack {:?} must total the cycle count",
            s.name,
            rec.cpi
        );

        let mut rec = Recorder::all();
        let (res, _) =
            inorder::simulate_observed(&p, &InOrderConfig::paper(), RunLimits::default(), &mut rec)
                .expect("in-order simulates");
        assert_eq!(
            rec.cpi.total(),
            res.cycles,
            "{}/in-order: CPI stack {:?} must total the cycle count",
            s.name,
            rec.cpi
        );
    }
}

#[test]
fn disabled_recorder_reproduces_the_unobserved_run_bit_for_bit() {
    for s in spec::all() {
        let p = (s.build)(Scale::Test);

        let plain = ooo::simulate(&p, &OooConfig::paper(), RunLimits::default()).unwrap();
        let mut rec = Recorder::disabled();
        let (observed, _) =
            ooo::simulate_observed(&p, &OooConfig::paper(), RunLimits::default(), &mut rec)
                .unwrap();
        assert_eq!(plain, observed, "{}/ooo must be identical under a disabled recorder", s.name);
        assert!(rec.is_empty(), "a disabled recorder retains no events");

        let plain = inorder::simulate(&p, &InOrderConfig::paper(), RunLimits::default()).unwrap();
        let mut rec = Recorder::disabled();
        let (observed, _) =
            inorder::simulate_observed(&p, &InOrderConfig::paper(), RunLimits::default(), &mut rec)
                .unwrap();
        assert_eq!(plain, observed, "{}/in-order must be identical too", s.name);
    }
}

#[test]
fn full_recorder_is_also_passive() {
    // Not just the disabled path: recording everything must not perturb
    // timing either.
    let p = (spec::by_name("compress").unwrap().build)(Scale::Test);
    let plain = ooo::simulate(&p, &OooConfig::paper(), RunLimits::default()).unwrap();
    let mut rec = Recorder::all();
    let (observed, _) =
        ooo::simulate_observed(&p, &OooConfig::paper(), RunLimits::default(), &mut rec).unwrap();
    assert_eq!(plain, observed);
    assert!(rec.total_recorded() > 0);
}

#[test]
fn chrome_export_is_byte_identical_for_identical_runs() {
    let p = (spec::by_name("eqntott").unwrap().build)(Scale::Test);
    let export = |mask: CategoryMask| {
        let mut rec = Recorder::new(mask);
        ooo::simulate_observed(&p, &OooConfig::paper(), RunLimits::default(), &mut rec).unwrap();
        chrome_trace(&rec).pretty()
    };
    let mask = CategoryMask::of(&[Category::Pipeline, Category::Cache, Category::Trap]);
    let a = export(mask);
    let b = export(mask);
    assert_eq!(a, b, "same program + same mask must export byte-identically");
    // And a different mask must actually change the export.
    assert_ne!(a, export(CategoryMask::of(&[Category::Cache])));
}

#[test]
fn chrome_export_parses_as_json() {
    let p = (spec::by_name("ora").unwrap().build)(Scale::Test);
    let mut rec = Recorder::all();
    ooo::simulate_observed(&p, &OooConfig::paper(), RunLimits::default(), &mut rec).unwrap();
    let doc = chrome_trace(&rec).pretty();
    let parsed = informing_memops::util::json::parse(&doc).expect("export must re-parse");
    assert!(parsed.get("traceEvents").is_some());
    assert!(parsed.get("otherData").is_some());
}

#[test]
fn category_mask_filters_event_streams() {
    let p = (spec::by_name("compress").unwrap().build)(Scale::Test);
    let mut rec = Recorder::new(CategoryMask::of(&[Category::Cache]));
    ooo::simulate_observed(&p, &OooConfig::paper(), RunLimits::default(), &mut rec).unwrap();
    assert!(!rec.is_empty(), "cache events must be recorded");
    assert!(
        rec.events().iter().all(|e| e.kind.category() == Category::Cache),
        "only cache-category events may appear under a cache-only mask"
    );
}

#[test]
fn ring_buffer_bounds_retention_and_counts_drops() {
    let p = (spec::by_name("compress").unwrap().build)(Scale::Test);
    let mut rec = Recorder::with_capacity(CategoryMask::ALL, 64);
    ooo::simulate_observed(&p, &OooConfig::paper(), RunLimits::default(), &mut rec).unwrap();
    assert_eq!(rec.len(), 64, "retention is capped at the ring capacity");
    assert!(rec.dropped() > 0);
    assert_eq!(rec.total_recorded(), rec.len() as u64 + rec.dropped());
    // Events are retained oldest-first and the newest survive eviction.
    let evs = rec.events();
    assert!(evs.windows(2).all(|w| w[0].cycle <= w[1].cycle));
}

#[test]
fn coherence_cpi_stack_reconciles_and_observed_run_is_passive() {
    let cfg = TraceConfig { procs: 8, ops_per_proc: 4_000, seed: 42 };
    let trace = migratory(&cfg);
    let params = MachineParams::table2();
    for scheme in Scheme::all() {
        let base = simulate_baseline(&trace, scheme, &params);
        let mut rec = Recorder::all();
        let (observed, _) =
            coh_observed(&trace, scheme, &params, &FaultPlan::none(), &mut rec).unwrap();
        assert_eq!(base, observed, "{}: observed run must be passive", scheme.name());
        assert_eq!(
            rec.cpi.total(),
            observed.total_cycles,
            "{}: critical-path CPI stack must total the completion time",
            scheme.name()
        );
    }
}

#[test]
fn coherence_faulty_run_still_reconciles_and_records_fault_events() {
    let cfg = TraceConfig { procs: 4, ops_per_proc: 2_000, seed: 7 };
    let trace = migratory(&cfg);
    let params = MachineParams::table2();
    let mut fc = FaultConfig::none(11);
    fc.drop_rate = 0.05;
    let plan = FaultPlan::new(fc);

    let mut rec = Recorder::all();
    let (res, _) = coh_observed(&trace, Scheme::Informing, &params, &plan, &mut rec).unwrap();
    assert_eq!(rec.cpi.total(), res.total_cycles);
    assert!(res.dropped_msgs > 0, "the 5% drop plan must actually drop");
    let names: Vec<&str> = rec.events().iter().map(|e| e.kind.name()).collect();
    assert!(names.contains(&"coh_request"));
    assert!(names.contains(&"coh_drop"));
    assert!(names.contains(&"coh_retry"));
    // Retry backoffs land in the histogram, one sample per retry.
    let h = rec.metrics.histogram("coh.retry_backoff").expect("histogram recorded");
    assert_eq!(h.samples(), res.retries);
}
