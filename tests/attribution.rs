//! Guards the miss-attribution layer's core contracts:
//!
//! 1. **Exact reconciliation** — every demand miss is classified into
//!    exactly one of compulsory / coherence / capacity / conflict, so the
//!    class totals sum *exactly* to the cache's own miss counters, for all
//!    14 workloads × both machines and for the coherence simulator under
//!    all three access-control schemes.
//! 2. **Passivity** — enabling attribution never feeds back into timing:
//!    results are bit-identical to plain runs.
//! 3. **Pattern taxonomy** — the stride / pointer-chase classifier is
//!    correct on seeded synthetic traces and on real programs via the
//!    front end's register-provenance tracking.

use informing_memops::coherence::{
    simulate_baseline, simulate_observed as coh_observed, MachineParams, Scheme,
};
use informing_memops::core::Machine;
use informing_memops::faults::FaultPlan;
use informing_memops::isa::{Asm, Cond, Reg};
use informing_memops::obs::{AttribConfig, EventKind, Pattern, Recorder, ServedBy};
use informing_memops::util::SmallRng;
use informing_memops::workloads::parallel::{migratory, TraceConfig};
use informing_memops::workloads::{spec, Scale};

fn attrib_recorder(m: &Machine) -> Recorder {
    // Mask NONE on purpose: the analyzer is fed before the category mask,
    // so attribution must be exact even with every event stream disabled.
    let mut rec = Recorder::disabled();
    rec.enable_attribution(m.attrib_config());
    rec
}

#[test]
fn classified_misses_reconcile_exactly_on_every_workload_and_machine() {
    for s in spec::all() {
        let p = (s.build)(Scale::Test);
        for m in [Machine::default_ooo(), Machine::default_in_order()] {
            let mut rec = attrib_recorder(&m);
            let (res, _) = m.run_observed(&p, &mut rec).expect("simulates");
            let a = rec.attribution().expect("attribution enabled");
            assert_eq!(
                a.cpu_demand_refs(),
                res.mem.l1d_accesses,
                "{}/{}: analyzer must see every demand reference",
                s.name,
                m.name()
            );
            assert!(
                a.reconciles_cpu(res.mem.l1d_misses, res.mem.l2_misses),
                "{}/{}: classes {:?} (sum {}) must reconcile with l1d_misses={} l2_misses={}",
                s.name,
                m.name(),
                a.cpu_classes(),
                a.cpu_classified_total(),
                res.mem.l1d_misses,
                res.mem.l2_misses
            );
        }
    }
}

#[test]
fn attribution_is_passive_bit_for_bit() {
    for s in spec::all() {
        let p = (s.build)(Scale::Test);
        for m in [Machine::default_ooo(), Machine::default_in_order()] {
            let plain = m.run(&p).expect("plain run");
            let mut rec = attrib_recorder(&m);
            let (observed, _) = m.run_observed(&p, &mut rec).expect("observed run");
            assert_eq!(
                observed,
                plain,
                "{}/{}: attribution-on run must be bit-identical",
                s.name,
                m.name()
            );
        }
    }
}

#[test]
fn coherence_misses_reconcile_under_all_three_schemes() {
    let cfg = TraceConfig { procs: 8, ops_per_proc: 4_000, seed: 0x1996 };
    let trace = migratory(&cfg);
    let params = MachineParams::table2();
    for scheme in Scheme::all() {
        let plain = simulate_baseline(&trace, scheme, &params);
        let mut rec = Recorder::disabled();
        rec.enable_attribution(AttribConfig::for_l1(params.l1_bytes, 1, params.line_bytes));
        let (res, _) = coh_observed(&trace, scheme, &params, &FaultPlan::none(), &mut rec)
            .expect("observed coherence run");
        assert_eq!(res.total_cycles, plain.total_cycles, "{scheme:?}: attribution is passive");
        assert_eq!(res.l1_misses, plain.l1_misses, "{scheme:?}: counters unchanged");
        let a = rec.attribution().expect("attribution enabled");
        assert!(
            a.reconciles_coh(res.l1_misses, res.l2_misses),
            "{scheme:?}: classes {:?} (sum {}) must reconcile with l1={} l2={}",
            a.coh_classes(),
            a.coh_classified_total(),
            res.l1_misses,
            res.l2_misses
        );
        // The protocol invalidates lines under every scheme here, so some
        // misses must classify as coherence.
        assert!(a.coh_classes()[1] > 0, "{scheme:?}: no coherence-classified misses");
    }
}

/// Drives raw synthetic event streams through an analyzer, as a property
/// sweep over seeds.
fn synth_profile(events: &[(u64, u64, bool)]) -> Pattern {
    let mut a = informing_memops::obs::Attribution::new(AttribConfig::default());
    for &(pc, addr, ptr_base) in events {
        a.on_event(&EventKind::DataAccess {
            served: ServedBy::L2,
            pc,
            addr,
            line: addr & !31,
            store: false,
            prefetch: false,
            ptr_base,
        });
    }
    let profile = a.profile("synthetic");
    assert_eq!(profile.pcs[0].pc, events[0].0);
    profile.pcs[0].pattern
}

#[test]
fn seeded_stride_sweep_recovers_the_exact_stride() {
    for case in 0..32u64 {
        let mut rng = SmallRng::seed_from_u64(0xA11B + case);
        // Strides in ±[8, 1024), 8-byte aligned, never zero.
        let magnitude = 8 + (rng.next_u64() % 127) * 8;
        let stride =
            if rng.next_u64().is_multiple_of(2) { magnitude as i64 } else { -(magnitude as i64) };
        let base = 0x10_0000u64.wrapping_add((rng.next_u64() % 1024) * 8);
        let events: Vec<(u64, u64, bool)> = (0..64u64)
            .map(|i| (0x500, base.wrapping_add((stride * i as i64) as u64), false))
            .collect();
        assert_eq!(
            synth_profile(&events),
            Pattern::FixedStride(stride),
            "case {case}: stride {stride} not recovered"
        );
    }
}

#[test]
fn seeded_pointer_chase_sweep_classifies_chases() {
    for case in 0..32u64 {
        let mut rng = SmallRng::seed_from_u64(0xC4A5E + case);
        // A shuffled chain: addresses in random order, all flagged as
        // load-provenance (the front end would tag a real chase this way).
        let events: Vec<(u64, u64, bool)> =
            (0..64u64).map(|_| (0x600, (rng.next_u64() % (1 << 20)) & !7, true)).collect();
        assert_eq!(synth_profile(&events), Pattern::PointerChase, "case {case}");
    }
}

#[test]
fn seeded_random_sweep_stays_irregular() {
    for case in 0..32u64 {
        let mut rng = SmallRng::seed_from_u64(0x1AA2 + case);
        let events: Vec<(u64, u64, bool)> =
            (0..64u64).map(|_| (0x700, rng.next_u64() & !7, false)).collect();
        assert_eq!(synth_profile(&events), Pattern::Irregular, "case {case}");
    }
}

#[test]
fn strided_program_profiles_as_fixed_stride() {
    let (r1, r2, r3) = (Reg::int(1), Reg::int(2), Reg::int(3));
    let mut a = Asm::new();
    a.li(r1, 0x8000);
    a.li(r3, 256);
    let l = a.here("loop");
    a.load(r2, r1, 0);
    a.addi(r1, r1, 64);
    a.addi(r3, r3, -1);
    a.branch(Cond::Ne, r3, Reg::ZERO, l);
    a.halt();
    let p = a.assemble().expect("assembles");

    for m in [Machine::default_ooo(), Machine::default_in_order()] {
        let mut rec = attrib_recorder(&m);
        let (res, _) = m.run_observed(&p, &mut rec).expect("runs");
        let a = rec.attribution().expect("enabled");
        assert!(a.reconciles_cpu(res.mem.l1d_misses, res.mem.l2_misses));
        let profile = a.profile("stride");
        let hot = &profile.pcs[0];
        assert_eq!(hot.pattern, Pattern::FixedStride(64), "{}: {:?}", m.name(), hot);
        // A 64-byte stride over 32-byte lines with a cold cache misses on
        // every access; all compulsory.
        assert_eq!(hot.classes[0], hot.misses, "{}: all cold misses", m.name());
    }
}

#[test]
fn pointer_chase_program_profiles_via_register_provenance() {
    const NODES: u64 = 128;
    const BASE: u64 = 0x2_0000;
    // A seeded shuffled chain laid out in data memory: node[i] holds the
    // address of its successor in a random permutation.
    let mut order: Vec<u64> = (0..NODES).collect();
    let mut rng = SmallRng::seed_from_u64(0xC8A1);
    for i in (1..order.len()).rev() {
        let j = (rng.next_u64() % (i as u64 + 1)) as usize;
        order.swap(i, j);
    }
    let mut a = Asm::new();
    for w in order.windows(2) {
        a.word(BASE + w[0] * 64, BASE + w[1] * 64);
    }
    let (r1, r3) = (Reg::int(1), Reg::int(3));
    a.li(r1, (BASE + order[0] * 64) as i64);
    a.li(r3, (NODES - 1) as i64);
    let l = a.here("chase");
    a.load(r1, r1, 0);
    a.addi(r3, r3, -1);
    a.branch(Cond::Ne, r3, Reg::ZERO, l);
    a.halt();
    let p = a.assemble().expect("assembles");

    for m in [Machine::default_ooo(), Machine::default_in_order()] {
        let mut rec = attrib_recorder(&m);
        let (res, _) = m.run_observed(&p, &mut rec).expect("runs");
        let a = rec.attribution().expect("enabled");
        assert!(a.reconciles_cpu(res.mem.l1d_misses, res.mem.l2_misses));
        let profile = a.profile("chase");
        let hot = &profile.pcs[0];
        assert_eq!(hot.pattern, Pattern::PointerChase, "{}: {:?}", m.name(), hot);
    }
}

#[test]
fn profile_exports_are_deterministic() {
    let s = spec::by_name("compress").expect("compress exists");
    let p = (s.build)(Scale::Test);
    let m = Machine::default_in_order();
    let render = || {
        let mut rec = attrib_recorder(&m);
        m.run_observed(&p, &mut rec).expect("runs");
        let profile = rec.attribution().expect("enabled").profile("compress/in-order");
        (profile.to_json().pretty(), profile.table().render(), profile.chrome_trace())
    };
    let (j1, t1, c1) = render();
    let (j2, t2, c2) = render();
    assert_eq!(j1, j2);
    assert_eq!(t1, t2);
    assert_eq!(c1, c2);
    assert!(informing_memops::util::json::parse(&c1).is_ok(), "trace twin is valid JSON");
}
