//! Fast-forward identity: the event-driven cores' no-progress cycle
//! skipping is a pure wall-clock optimization.
//!
//! `RunLimits::tick_accurate()` sets `force_tick_accurate`, which keeps the
//! wakeup-horizon computation (so deadlock detection is unchanged) but
//! advances time one cycle at a time instead of jumping to the next event.
//! Every run here must produce a bit-identical `RunResult` either way —
//! counters, slot accounting, trap and misprediction totals, all of it.

use imo_faults::FaultConfig;
use imo_faults::FaultPlan;
use imo_util::check::Checker;
use imo_util::ensure_eq;
use informing_memops::core::instrument::{instrument, HandlerBody, HandlerKind, Scheme};
use informing_memops::core::Machine;
use informing_memops::cpu::{
    inorder, ooo, InOrderConfig, OooConfig, Outcome, RunLimits, SimSession,
};
use informing_memops::obs::Recorder;
use informing_memops::workloads::{all, by_name, Scale};

fn schemes() -> [(&'static str, Scheme); 3] {
    let body = HandlerBody::Generic { len: 10 };
    [
        ("none", Scheme::None),
        ("trap-10S", Scheme::Trap { handlers: HandlerKind::Single, body }),
        ("cc-10S", Scheme::ConditionCode { handlers: HandlerKind::Single, body }),
    ]
}

/// All 14 workloads x both machines x 3 schemes: event-driven equals
/// tick-accurate bit-for-bit.
#[test]
fn all_workloads_machines_schemes_are_tick_identical() {
    for spec in all() {
        let p = (spec.build)(Scale::Test);
        for (label, scheme) in &schemes() {
            let inst = instrument(&p, scheme).expect("instruments");
            for machine in [Machine::default_ooo(), Machine::default_in_order()] {
                let event = machine
                    .run_limited(&inst.program, RunLimits::default())
                    .unwrap_or_else(|e| panic!("{}/{label}: {e}", spec.name));
                let tick = machine
                    .run_limited(&inst.program, RunLimits::tick_accurate())
                    .unwrap_or_else(|e| panic!("{}/{label} (tick): {e}", spec.name));
                assert_eq!(
                    event,
                    tick,
                    "{}/{}/{label}: fast-forward must not change the simulation",
                    spec.name,
                    machine.name()
                );
            }
        }
    }
}

/// Handler-fault injection goes through the same timing loops; three seeded
/// plans must also be tick-identical on both cores.
#[test]
fn seeded_faulty_runs_are_tick_identical() {
    let p = (by_name("compress").expect("workload exists").build)(Scale::Test);
    let scheme =
        Scheme::Trap { handlers: HandlerKind::Single, body: HandlerBody::Generic { len: 10 } };
    let inst = instrument(&p, &scheme).expect("instruments");
    for seed in [1u64, 2, 3] {
        let mut fc = FaultConfig::none(seed);
        fc.handler_overrun_rate = 0.2;
        fc.handler_overrun_cycles = 40;
        fc.stale_mhar_rate = 0.1;
        fc.stale_mhar_cycles = 25;
        let plan = FaultPlan::new(fc);

        let ev =
            ooo::simulate_faulty(&inst.program, &OooConfig::paper(), RunLimits::default(), &plan)
                .expect("faulty ooo run");
        let tk = ooo::simulate_faulty(
            &inst.program,
            &OooConfig::paper(),
            RunLimits::tick_accurate(),
            &plan,
        )
        .expect("faulty ooo tick run");
        assert_eq!(ev, tk, "ooo faulty seed {seed}");
        assert!(ev.handler_faults > 0, "seed {seed} must actually inject faults");

        let ev = inorder::simulate_faulty(
            &inst.program,
            &InOrderConfig::paper(),
            RunLimits::default(),
            &plan,
        )
        .expect("faulty inorder run");
        let tk = inorder::simulate_faulty(
            &inst.program,
            &InOrderConfig::paper(),
            RunLimits::tick_accurate(),
            &plan,
        )
        .expect("faulty inorder tick run");
        assert_eq!(ev, tk, "inorder faulty seed {seed}");
    }
}

/// Block-batch property sweep: 32 seeded random configurations, each run in
/// one of the four modes that interact with the block-batched fast paths —
/// recorder on and attribution on (which must *disengage* the batch path,
/// exactly), a seeded fault plan (which rides through it), and a `stop_at`
/// landing mid-run (which forces the split plain-run queue to rematerialize
/// into a checkpoint and resume). Every mode must end bit-identical to the
/// tick-accurate reference.
#[test]
fn block_batch_modes_are_tick_identical() {
    let names: Vec<&'static str> = all().iter().map(|s| s.name).collect();
    Checker::new("fastforward_block_batch_modes").cases(32).run(|g| {
        let name = *g.pick(&names);
        let p = (by_name(name).expect("workload exists").build)(Scale::Test);
        let handlers = *g.pick(&[HandlerKind::Single, HandlerKind::PerReference]);
        let body = HandlerBody::Generic { len: *g.pick(&[1u32, 10, 100]) };
        let scheme = *g.pick(&[
            Scheme::None,
            Scheme::Trap { handlers, body },
            Scheme::ConditionCode { handlers, body },
        ]);
        let inst = instrument(&p, &scheme).map_err(|e| format!("{name}: {e}"))?;
        let machine = if g.bool() { Machine::default_ooo() } else { Machine::default_in_order() };
        let ctx = format!("{name} on {} under {scheme:?}", machine.name());
        let tick = machine
            .run_limited(&inst.program, RunLimits::tick_accurate())
            .map_err(|e| format!("{ctx} (tick): {e}"))?;
        match *g.pick(&["recorder", "attrib", "faulty", "stop_at"]) {
            "recorder" => {
                let mut rec = Recorder::all();
                let (res, _) = machine
                    .run_observed(&inst.program, &mut rec)
                    .map_err(|e| format!("{ctx} (recorder): {e}"))?;
                ensure_eq!(res, tick, "{ctx}: recorder on");
                ensure_eq!(rec.cpi.total(), res.cycles, "{ctx}: CPI covers every cycle");
            }
            "attrib" => {
                let mut rec = Recorder::disabled();
                rec.enable_attribution(machine.attrib_config());
                let (res, _) = machine
                    .run_observed(&inst.program, &mut rec)
                    .map_err(|e| format!("{ctx} (attrib): {e}"))?;
                ensure_eq!(res, tick, "{ctx}: attribution on");
            }
            "faulty" => {
                let mut fc = FaultConfig::none(g.int(1..u64::MAX));
                fc.handler_overrun_rate = 0.2;
                fc.handler_overrun_cycles = 40;
                fc.stale_mhar_rate = 0.1;
                fc.stale_mhar_cycles = 25;
                let plan = FaultPlan::new(fc);
                let ev = run_to_completion(
                    SimSession::new(&inst.program, machine.core_config())
                        .faults(plan)
                        .run()
                        .map_err(|e| format!("{ctx} (faulty): {e}"))?,
                )?;
                let tk = run_to_completion(
                    SimSession::new(&inst.program, machine.core_config())
                        .faults(plan)
                        .limits(RunLimits::tick_accurate())
                        .run()
                        .map_err(|e| format!("{ctx} (faulty tick): {e}"))?,
                )?;
                ensure_eq!(ev, tk, "{ctx}: faulty plan");
            }
            mode => {
                debug_assert_eq!(mode, "stop_at");
                let stop = g.int(1..tick.cycles.max(2));
                let outcome = SimSession::new(&inst.program, machine.core_config())
                    .limits(RunLimits::stop_at(stop))
                    .run()
                    .map_err(|e| format!("{ctx} stop {stop}: {e}"))?;
                let resumed = match outcome {
                    Outcome::Paused(ckpt) => run_to_completion(
                        SimSession::new(&inst.program, machine.core_config())
                            .resume(&ckpt)
                            .map_err(|e| format!("{ctx} resume: {e}"))?,
                    )?,
                    Outcome::Complete { result, .. } => result,
                };
                ensure_eq!(resumed, tick, "{ctx}: stop_at {stop} mid-run");
            }
        }
        Ok(())
    });
}

fn run_to_completion(outcome: Outcome) -> Result<informing_memops::cpu::RunResult, String> {
    match outcome {
        Outcome::Complete { result, .. } => Ok(result),
        Outcome::Paused(c) => Err(format!("unexpected pause at cycle {}", c.cycle())),
    }
}

/// 32 random (workload, scheme, machine) triples — including the 1- and
/// 100-instruction handler bodies and per-reference handlers the fixed
/// matrix above does not cover.
#[test]
fn random_configurations_are_tick_identical() {
    let names: Vec<&'static str> = all().iter().map(|s| s.name).collect();
    Checker::new("fastforward_identity_random").cases(32).run(|g| {
        let name = *g.pick(&names);
        let p = (by_name(name).expect("workload exists").build)(Scale::Test);
        let handlers = *g.pick(&[HandlerKind::Single, HandlerKind::PerReference]);
        let body = HandlerBody::Generic { len: *g.pick(&[1u32, 10, 100]) };
        let scheme = *g.pick(&[
            Scheme::None,
            Scheme::Trap { handlers, body },
            Scheme::ConditionCode { handlers, body },
        ]);
        let inst = instrument(&p, &scheme).map_err(|e| format!("{name}: {e}"))?;
        let machine = if g.bool() { Machine::default_ooo() } else { Machine::default_in_order() };
        let event = machine
            .run_limited(&inst.program, RunLimits::default())
            .map_err(|e| format!("{name} on {}: {e}", machine.name()))?;
        let tick = machine
            .run_limited(&inst.program, RunLimits::tick_accurate())
            .map_err(|e| format!("{name} on {} (tick): {e}", machine.name()))?;
        ensure_eq!(event, tick, "{name} on {} under {scheme:?}", machine.name());
        Ok(())
    });
}
