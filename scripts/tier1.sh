#!/usr/bin/env bash
# Tier-1 verification: build, tests, formatting, lints and example smoke
# tests — fully offline. The workspace has zero external dependencies, so
# every step below must succeed without registry access.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release --offline

echo "== cargo test -q =="
cargo test -q --offline

echo "== fault-injection suite =="
cargo test -q --offline --test fault_injection

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy --workspace -D warnings =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== example smoke tests =="
for ex in quickstart profiler prefetcher multithreading adaptive coherence observe; do
    echo "-- example: $ex"
    cargo run -q --release --offline --example "$ex" > /dev/null
done
echo "-- example: observe (in-order, cache+trap mask)"
cargo run -q --release --offline --example observe -- compress in-order cache,trap > /dev/null

echo "== BENCH_*.json baseline schema check =="
cargo run -q --release --offline --example bench_check

echo "tier1: all checks passed"
