#!/usr/bin/env bash
# Tier-1 verification: build, tests, formatting, lints and example smoke
# tests — fully offline. The workspace has zero external dependencies, so
# every step below must succeed without registry access.
#
# `cargo test` already runs every tests/*.rs target (fault_injection,
# parallel_sweep, …); nothing is re-run individually. The example smoke
# list is derived from examples/*.rs so new examples are covered
# automatically.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release --offline

echo "== cargo test -q =="
cargo test -q --offline

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy --workspace -D warnings =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== example smoke tests =="
for src in examples/*.rs; do
    ex="$(basename "$src" .rs)"
    echo "-- example: $ex"
    cargo run -q --release --offline --example "$ex" > /dev/null
done
echo "-- example: observe (in-order, cache+trap mask)"
cargo run -q --release --offline --example observe -- compress in-order cache,trap > /dev/null
echo "-- example: why_miss (xlisp pointer-chase attribution, in-order)"
cargo run -q --release --offline --example why_miss -- xlisp in-order > /dev/null

echo "== sweep job server smoke =="
# Self-test: starts imo-serve on loopback, pushes a 4-cell shard (plus a
# checkpoint-preempted shard) through TCP workers, diffs against the
# in-process results bit-for-bit, and hits /status.
cargo run -q --release --offline -p imo-serve -- --smoke --workers 2

echo "== sweep-store gc smoke =="
# Drops .imo-cache entries whose code fingerprint no longer matches the
# binaries built above; a no-op on a fresh checkout.
scripts/store_gc.sh

echo "tier1: all checks passed"
