#!/usr/bin/env bash
# Garbage-collects the content-addressed sweep store (DESIGN.md §14).
#
# The store is addressed by (schema version, code fingerprint): every
# simulator change moves live entries to a fresh
# .imo-cache/v<schema>/<fingerprint>/ directory and strands the old one.
# This script asks the current build for its fingerprint (ci_gate
# --code-hash), deletes every directory addressed by any other fingerprint
# or schema version, and reports the reclaimed bytes.
#
# Honours IMO_STORE_DIR (default .imo-cache at the repo root). Safe to run
# any time: live entries are never touched, and a concurrent reader of a
# dropped directory just falls back to recompute.
set -euo pipefail
cd "$(dirname "$0")/.."
shopt -s nullglob

cache="${IMO_STORE_DIR:-.imo-cache}"
if [[ ! -d "$cache" ]]; then
    echo "store_gc: $cache does not exist, nothing to reclaim"
    exit 0
fi

if [[ -x target/release/ci_gate ]]; then
    fp=$(target/release/ci_gate --code-hash)
else
    fp=$(cargo run -q --release --offline -p imo-bench --bin ci_gate -- --code-hash)
fi
schema_dir="v1"

bytes_used() { du -sk "$1" 2>/dev/null | awk '{print $1 * 1024}'; }
before=$(bytes_used "$cache")

dropped=0
for d in "$cache"/*/; do
    base=$(basename "$d")
    if [[ "$base" != "$schema_dir" ]]; then
        rm -rf "$d"
        dropped=$((dropped + 1))
    fi
done
for d in "$cache/$schema_dir"/*/; do
    base=$(basename "$d")
    if [[ "$base" != "$fp" ]]; then
        rm -rf "$d"
        dropped=$((dropped + 1))
    fi
done

after=$(bytes_used "$cache")
live=0
if [[ -d "$cache/$schema_dir/$fp" ]]; then
    live=$(find "$cache/$schema_dir/$fp" -name '*.json' | wc -l)
fi
echo "store_gc: fingerprint $fp, dropped $dropped stale dir(s)," \
     "reclaimed $((before - after)) bytes, $live live entrie(s) in $cache"
