#!/usr/bin/env bash
# Tier-2 verification: regenerate the full bench matrix (all 16 targets,
# which rewrites every BENCH_*.json at the repo root) and then run the
# regression gate against the refreshed tree. Each step reports its
# wall-clock time.
#
# The deterministic targets fan out across the worker pool
# (IMO_THREADS overrides the thread count; output is byte-identical at
# any setting). The wall-clock targets (substrate, obs_overhead,
# simspeed) honour IMO_BENCH_SAMPLES / IMO_BENCH_SAMPLE_MS for faster
# sampling.
#
# Use this to (re)baseline after an intentional behaviour change:
#   scripts/tier2.sh && git add BENCH_*.json
#
# IMO_SERVE=1 routes the ci_gate step through the sweep job server
# (ci_gate --serve): cells are sharded across imo-serve worker
# subprocesses over loopback TCP and must still reproduce the baselines
# byte-identically.
#
# IMO_CHAOS=1 additionally runs a 10x-size chaos soak (10^5 synthetic
# cells plus coherence and CPU sweeps under a saturated failure
# schedule, IMO_CHAOS_CHECK=1 hard assertions) before the normal
# matrix. The soak's proof bits — byte-identity with the clean serial
# run, coherence recovery from a checkpoint, zero quarantines — panic
# on violation. The default-size chaos_soak rerun in the matrix loop
# below then restores the committed-size baseline for the gate.
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHES=(table1 fig2 fig3 handler100 branch_vs_exception table2 fig4 \
         fig4_sensitivity ablation_mshr ablation_checkpoints \
         fault_resilience attrib substrate obs_overhead simspeed chaos_soak)

total_start=$(date +%s%N)
step() { # step <label> <cmd...>
    local label=$1; shift
    local t0 t1
    t0=$(date +%s%N)
    "$@" > /dev/null
    t1=$(date +%s%N)
    printf '%-28s %6d ms\n' "$label" $(( (t1 - t0) / 1000000 ))
}

echo "== build bench harnesses =="
step "build" cargo build --release --offline -p imo-bench -p imo-serve --benches --bins

if [[ "${IMO_CHAOS:-}" == "1" ]]; then
    echo "== chaos soak (10^5 cells, hard checks) =="
    step "chaos soak" env IMO_CHAOS_CELLS=100000 IMO_CHAOS_CHECK=1 \
        cargo bench -q --offline -p imo-bench --bench chaos_soak
fi

echo "== bench matrix (${#BENCHES[@]} targets) =="
for b in "${BENCHES[@]}"; do
    step "bench: $b" cargo bench -q --offline -p imo-bench --bench "$b"
done

echo "== ci_gate against the regenerated tree =="
t0=$(date +%s%N)
if [[ "${IMO_SERVE:-}" == "1" ]]; then
    gate_out=$(cargo run -q --release --offline -p imo-bench --bin ci_gate -- \
        --serve --stats-json ci_gate_stats.json)
else
    gate_out=$(cargo run -q --release --offline -p imo-bench --bin ci_gate -- \
        --stats-json ci_gate_stats.json)
fi
t1=$(date +%s%N)
printf '%-28s %6d ms\n' "ci_gate" $(( (t1 - t0) / 1000000 ))

# Surface the simulator-performance and memo-dedup numbers the gate and
# the simspeed baseline measured: total cells simulated vs served from
# the memo cache (in-process and on-disk), and sim-cycles/sec of the
# event-driven cores. The per-target table comes from ci_gate
# --stats-json — the same document CI uploads as an artifact.
echo "== simulator performance =="
grep '^memo:' <<< "$gate_out" || true
python3 - <<'PY' 2>/dev/null || true
import json
doc = json.load(open("ci_gate_stats.json"))
print(f'gate store: mode {doc["store_mode"]}, code fingerprint {doc["code_fingerprint"]}')
for t in doc["targets"]:
    note = "  (skipped)" if t["skipped"] else ""
    print(f'gate: {t["name"]:22s} {t["wall_ms"]:6d} ms  '
          f'sim {t["simulated"]:4d}  mem {t["served_memory"]:4d}  '
          f'disk {t["served_disk"]:4d}{note}')
tot = doc["totals"]
print(f'gate totals: {tot["wall_ms"]} ms, {tot["simulated"]} simulated, '
      f'{tot["served_memory"]} served from memory, {tot["served_disk"]} from disk '
      f'({tot["disk_coverage_pct"]:.1f}% disk coverage)')
PY
python3 - <<'PY' 2>/dev/null || true
import json
doc = json.load(open("BENCH_simspeed.json"))
for r in doc["data"]["rows"]:
    print(f'simspeed: {r["machine"]:9s} {r["scheme"]:9s} '
          f'{r["cycles_per_sec"] / 1e6:7.1f} Mcycles/s  '
          f'{r["speedup_vs_tick"]:.2f}x vs tick-accurate  '
          f'block hit {r["block_hit_rate"] * 100:.1f}%  '
          f'batched {r["batched_instr_pct"]:.1f}%')
d = doc["data"]["dedup"]
print(f'simspeed dedup proof: {d["requested"]} requested, '
      f'{d["simulated"]} simulated, {d["deduped"]} served from cache')
PY

total_end=$(date +%s%N)
printf 'tier2: all steps passed in %d ms\n' $(( (total_end - total_start) / 1000000 ))
