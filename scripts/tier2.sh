#!/usr/bin/env bash
# Tier-2 verification: regenerate the full bench matrix (all 13 targets,
# which rewrites every BENCH_*.json at the repo root) and then run the
# regression gate against the refreshed tree. Each step reports its
# wall-clock time.
#
# The deterministic targets fan out across the worker pool
# (IMO_THREADS overrides the thread count; output is byte-identical at
# any setting). The two wall-clock targets (substrate, obs_overhead)
# honour IMO_BENCH_SAMPLES / IMO_BENCH_SAMPLE_MS for faster sampling.
#
# Use this to (re)baseline after an intentional behaviour change:
#   scripts/tier2.sh && git add BENCH_*.json
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHES=(table1 fig2 fig3 handler100 branch_vs_exception table2 fig4 \
         fig4_sensitivity ablation_mshr ablation_checkpoints \
         fault_resilience substrate obs_overhead)

total_start=$(date +%s%N)
step() { # step <label> <cmd...>
    local label=$1; shift
    local t0 t1
    t0=$(date +%s%N)
    "$@" > /dev/null
    t1=$(date +%s%N)
    printf '%-28s %6d ms\n' "$label" $(( (t1 - t0) / 1000000 ))
}

echo "== build bench harnesses =="
step "build" cargo build --release --offline -p imo-bench --benches --bins

echo "== bench matrix (${#BENCHES[@]} targets) =="
for b in "${BENCHES[@]}"; do
    step "bench: $b" cargo bench -q --offline -p imo-bench --bench "$b"
done

echo "== ci_gate against the regenerated tree =="
step "ci_gate" cargo run -q --release --offline -p imo-bench --bin ci_gate

total_end=$(date +%s%N)
printf 'tier2: all steps passed in %d ms\n' $(( (total_end - total_start) / 1000000 ))
